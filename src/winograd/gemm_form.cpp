#include "winograd/gemm_form.hpp"

#include <stdexcept>
#include <vector>

namespace wino::winograd {

using tensor::Tensor4f;

Tensor4f conv2d_winograd_gemm(const Tensor4f& input, const Tensor4f& kernels,
                              int m, const WinogradConvOptions& opt) {
  const auto& is = input.shape();
  const auto& ks = kernels.shape();
  if (ks.c != is.c) {
    throw std::invalid_argument("conv2d_winograd_gemm: channel mismatch");
  }
  const TileTransformer xf(transforms(m, static_cast<int>(ks.h)));
  const auto mm = static_cast<std::size_t>(m);
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;
  const int pad = opt.pad;

  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(ks.h) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(ks.w) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_winograd_gemm: empty output");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;
  const std::size_t tiles = tiles_h * tiles_w * is.n;

  // Scatter phase: U[(xi,nu)][c][tile], V[(xi,nu)][k][c].
  const TransformedKernels tk(xf, kernels);
  std::vector<float> scattered_v(nsq * ks.n * ks.c);
  for (std::size_t k = 0; k < ks.n; ++k) {
    for (std::size_t c = 0; c < ks.c; ++c) {
      const auto v = tk.v(k, c);
      for (std::size_t e = 0; e < nsq; ++e) {
        scattered_v[(e * ks.n + k) * ks.c + c] = v[e];
      }
    }
  }

  std::vector<float> scattered_u(nsq * is.c * tiles);
  {
    std::vector<float> d(nsq);
    std::vector<float> u(nsq);
    std::size_t tile_idx = 0;
    for (std::size_t img = 0; img < is.n; ++img) {
      for (std::size_t th = 0; th < tiles_h; ++th) {
        for (std::size_t tw = 0; tw < tiles_w; ++tw, ++tile_idx) {
          const std::ptrdiff_t y0 =
              static_cast<std::ptrdiff_t>(th * mm) - pad;
          const std::ptrdiff_t x0 =
              static_cast<std::ptrdiff_t>(tw * mm) - pad;
          for (std::size_t c = 0; c < is.c; ++c) {
            for (std::size_t i = 0; i < n; ++i) {
              for (std::size_t j = 0; j < n; ++j) {
                d[i * n + j] = input.padded(
                    img, c, y0 + static_cast<std::ptrdiff_t>(i),
                    x0 + static_cast<std::ptrdiff_t>(j));
              }
            }
            xf.transform_data(d, u);
            for (std::size_t e = 0; e < nsq; ++e) {
              scattered_u[(e * is.c + c) * tiles + tile_idx] = u[e];
            }
          }
        }
      }
    }
  }

  // GEMM phase: nsq independent [K x C] x [C x tiles] products.
  std::vector<float> products(nsq * ks.n * tiles, 0.0F);
  for (std::size_t e = 0; e < nsq; ++e) {
    const float* vmat = &scattered_v[e * ks.n * ks.c];
    const float* umat = &scattered_u[e * is.c * tiles];
    float* out = &products[e * ks.n * tiles];
    for (std::size_t k = 0; k < ks.n; ++k) {
      for (std::size_t c = 0; c < ks.c; ++c) {
        const float vkc = vmat[k * ks.c + c];
        if (vkc == 0.0F) continue;
        const float* urow = &umat[c * tiles];
        float* orow = &out[k * tiles];
        for (std::size_t b = 0; b < tiles; ++b) orow[b] += vkc * urow[b];
      }
    }
  }

  // Gather phase: per (k, tile), collect the nsq products and inverse-
  // transform into the output tile.
  Tensor4f out(is.n, ks.n, out_h, out_w);
  std::vector<float> m_tile(nsq);
  std::vector<float> y(mm * mm);
  for (std::size_t k = 0; k < ks.n; ++k) {
    std::size_t tile_idx = 0;
    for (std::size_t img = 0; img < is.n; ++img) {
      for (std::size_t th = 0; th < tiles_h; ++th) {
        for (std::size_t tw = 0; tw < tiles_w; ++tw, ++tile_idx) {
          for (std::size_t e = 0; e < nsq; ++e) {
            m_tile[e] = products[(e * ks.n + k) * tiles + tile_idx];
          }
          xf.inverse(m_tile, y);
          for (std::size_t i = 0; i < mm; ++i) {
            const std::size_t oy = th * mm + i;
            if (oy >= out_h) break;
            for (std::size_t j = 0; j < mm; ++j) {
              const std::size_t ox = tw * mm + j;
              if (ox >= out_w) break;
              out(img, k, oy, ox) = y[i * mm + j];
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace wino::winograd
