#include "winograd/op_report.hpp"

namespace wino::winograd {

TransformOpReport transform_op_report(const TransformSet& t, bool optimised) {
  TransformOpReport rep;
  rep.m = t.m;
  rep.r = t.r;
  const auto n = static_cast<std::size_t>(t.tile());
  const auto m = static_cast<std::size_t>(t.m);
  const auto r = static_cast<std::size_t>(t.r);

  const LinearProgram data = LinearProgram::from_matrix(t.bt, optimised);
  const LinearProgram filter = LinearProgram::from_matrix(t.g, optimised);
  const LinearProgram inverse = LinearProgram::from_matrix(t.at, optimised);

  rep.data_1d = data.counts();
  rep.filter_1d = filter.counts();
  rep.inverse_1d = inverse.counts();
  rep.data_2d = data.counts() * (2 * n);
  rep.filter_2d = filter.counts() * (r + n);
  rep.inverse_2d = inverse.counts() * (n + m);
  rep.data_depth = data.dag_depth();
  rep.inverse_depth = inverse.dag_depth();
  return rep;
}

TransformOpReport transform_op_report(int m, int r, bool optimised) {
  return transform_op_report(transforms(m, r), optimised);
}

}  // namespace wino::winograd
