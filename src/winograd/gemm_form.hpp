// Batched-GEMM formulation of Winograd convolution (Lavin & Gray, Section
// 4): after the data/filter transforms, each of the (m+r-1)^2 transform-
// domain coordinates (xi, nu) is an independent [K x C] x [C x tiles]
// matrix multiply:
//     M(xi,nu)[k, b] = sum_c V(xi,nu)[k, c] * U(xi,nu)[c, b]
// This reduces the reduction over channels to dense GEMMs — the reason
// Winograd maps well onto GPUs/BLAS — and provides a third, structurally
// different implementation of the same convolution for cross-validation.
#pragma once

#include "tensor/tensor.hpp"
#include "winograd/kernels.hpp"

namespace wino::winograd {

/// Layer convolution via the scatter/GEMM/gather pipeline. Numerically
/// equivalent to conv2d_winograd (different accumulation order; tests
/// bound the difference). Stride 1, symmetric zero padding.
tensor::Tensor4f conv2d_winograd_gemm(const tensor::Tensor4f& input,
                                      const tensor::Tensor4f& kernels,
                                      int m,
                                      const WinogradConvOptions& opt = {});

}  // namespace wino::winograd
