#include "winograd/kernels.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace wino::winograd {

using tensor::Tensor4f;

std::size_t fused_block_columns(std::size_t channels, std::size_t tile,
                                std::size_t budget_bytes) {
  // Per column the block holds (C + 1) * n^2 floats: the transformed data
  // bank plus one accumulator lane. Half the budget keeps the V bank and
  // the output tiles of the block resident alongside.
  const std::size_t per_column = (channels + 1) * tile * tile * sizeof(float);
  if (per_column == 0) return 1;
  const std::size_t fit = budget_bytes / (2 * per_column);
  return std::clamp<std::size_t>(fit, 1, kFusedMaxBlockColumns);
}

TileTransformer::TileTransformer(const TransformSet& t)
    : m_(t.m), r_(t.r), n_(t.tile()), bt_(t.bt_f()), g_(t.g_f()),
      at_(t.at_f()) {}

void TileTransformer::sandwich(const FMatrix& mat, std::span<const float> in,
                               std::span<float> out) const {
  const std::size_t rows = mat.rows();
  const std::size_t cols = mat.cols();
  if (in.size() != cols * cols || out.size() != rows * rows) {
    throw std::invalid_argument("sandwich: tile size mismatch");
  }
  // tmp = mat * in  (rows x cols). Tile edges are tiny (n = m + r - 1 <= 6
  // for every supported F(m, r)), so the intermediate lives on the stack —
  // this runs per gathered tile in the conv hot loop, where a heap
  // allocation per call would dominate the arithmetic.
  float stack_buf[64];
  std::vector<float> heap_buf;
  float* tmp;
  if (rows * cols <= std::size(stack_buf)) {
    tmp = stack_buf;
  } else {
    heap_buf.resize(rows * cols);
    tmp = heap_buf.data();
  }
  std::fill(tmp, tmp + rows * cols, 0.0F);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < cols; ++k) {
      const float a = mat(i, k);
      if (a == 0.0F) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        tmp[i * cols + j] += a * in[k * cols + j];
      }
    }
  }
  // out = tmp * mat^T (rows x rows)
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      float acc = 0.0F;
      for (std::size_t k = 0; k < cols; ++k) {
        acc += tmp[i * cols + k] * mat(j, k);
      }
      out[i * rows + j] = acc;
    }
  }
}

void TileTransformer::transform_filter(std::span<const float> g,
                                       std::span<float> v) const {
  sandwich(g_, g, v);
}

void TileTransformer::transform_data(std::span<const float> d,
                                     std::span<float> u) const {
  sandwich(bt_, d, u);
}

void TileTransformer::inverse(std::span<const float> mm,
                              std::span<float> y) const {
  sandwich(at_, mm, y);
}

void TileTransformer::convolve_tile(std::span<const float> d,
                                    std::span<const float> g,
                                    std::span<float> y) const {
  const auto nsq = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  std::vector<float> u(nsq);
  std::vector<float> v(nsq);
  transform_data(d, u);
  transform_filter(g, v);
  for (std::size_t i = 0; i < nsq; ++i) u[i] *= v[i];
  inverse(u, y);
}

void TileTransformer::convolve_1d(std::span<const float> d,
                                  std::span<const float> g,
                                  std::span<float> y) const {
  const auto n = static_cast<std::size_t>(n_);
  if (d.size() != n || g.size() != static_cast<std::size_t>(r_) ||
      y.size() != static_cast<std::size_t>(m_)) {
    throw std::invalid_argument("convolve_1d: size mismatch");
  }
  std::vector<float> u(n, 0.0F);
  std::vector<float> v(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) u[i] += bt_(i, j) * d[j];
    for (std::size_t j = 0; j < g.size(); ++j) v[i] += g_(i, j) * g[j];
    u[i] *= v[i];
  }
  for (std::size_t k = 0; k < y.size(); ++k) {
    float acc = 0.0F;
    for (std::size_t i = 0; i < n; ++i) acc += at_(k, i) * u[i];
    y[k] = acc;
  }
}

TransformedKernels::TransformedKernels(const TileTransformer& xf,
                                       const Tensor4f& kernels)
    : kernels_(kernels.shape().n), channels_(kernels.shape().c),
      tile_sq_(static_cast<std::size_t>(xf.tile()) *
               static_cast<std::size_t>(xf.tile())) {
  const auto r = static_cast<std::size_t>(xf.r());
  if (kernels.shape().h != r || kernels.shape().w != r) {
    throw std::invalid_argument("TransformedKernels: kernel size != r x r");
  }
  data_.resize(kernels_ * channels_ * tile_sq_);
  std::vector<float> g(r * r);
  for (std::size_t k = 0; k < kernels_; ++k) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t u = 0; u < r; ++u) {
        for (std::size_t v = 0; v < r; ++v) g[u * r + v] = kernels(k, c, u, v);
      }
      xf.transform_filter(
          g, {data_.data() + (k * channels_ + c) * tile_sq_, tile_sq_});
    }
  }
  // Position-major mirror for the fused executor: same floats, re-ordered
  // so the coordinate-e GEMM reads its C multiplicands contiguously.
  pos_.resize(data_.size());
  for (std::size_t k = 0; k < kernels_; ++k) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* v_kc = data_.data() + (k * channels_ + c) * tile_sq_;
      for (std::size_t e = 0; e < tile_sq_; ++e) {
        pos_[(k * tile_sq_ + e) * channels_ + c] = v_kc[e];
      }
    }
  }
}

Tensor4f conv2d_winograd(const Tensor4f& input, const Tensor4f& kernels,
                         int m, const WinogradConvOptions& opt) {
  const TileTransformer xf(
      transforms(m, static_cast<int>(kernels.shape().h)));
  return conv2d_winograd(input, kernels, xf, opt);
}

Tensor4f conv2d_winograd(const Tensor4f& input, const Tensor4f& kernels,
                         const TileTransformer& xf,
                         const WinogradConvOptions& opt) {
  const auto& ks = kernels.shape();
  const auto r = static_cast<std::size_t>(xf.r());
  if (ks.h != r || ks.w != r) {
    throw std::invalid_argument("conv2d_winograd: kernel shape mismatch");
  }
  const TransformedKernels tk(xf, kernels);
  return conv2d_winograd(input, tk, xf, opt);
}

Tensor4f conv2d_winograd(const Tensor4f& input, const TransformedKernels& tk,
                         const TileTransformer& xf,
                         const WinogradConvOptions& opt) {
  const auto& is = input.shape();
  const std::size_t kernel_count = tk.kernel_count();
  const auto r = static_cast<std::size_t>(xf.r());
  const auto tile = static_cast<std::size_t>(xf.tile());
  if (tk.tile_area() != tile * tile) {
    throw std::invalid_argument(
        "conv2d_winograd: kernel bank was transformed for a different tile");
  }
  if (tk.channels() != is.c) {
    throw std::invalid_argument("conv2d_winograd: channel mismatch");
  }
  const int pad = opt.pad;
  const std::ptrdiff_t oh =
      static_cast<std::ptrdiff_t>(is.h) + 2 * pad - static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow =
      static_cast<std::ptrdiff_t>(is.w) + 2 * pad - static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_winograd: output would be empty");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);

  const auto mm = static_cast<std::size_t>(xf.m());
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;

  Tensor4f out(is.n, kernel_count, out_h, out_w);

  std::vector<float> d(nsq);
  // Data transforms for all channels of the current tile, computed once
  // and shared across the K kernels — the software mirror of the paper's
  // first hardware contribution (Section IV-E): U is independent of k, so
  // recomputing it per kernel (as [3]'s PEs do) is redundant.
  std::vector<float> u_all(is.c * nsq);
  std::vector<float> prod(nsq);
  std::vector<float> acc_m(nsq);
  std::vector<float> y(mm * mm);
  std::vector<float> acc_y(mm * mm);

  for (std::size_t img = 0; img < is.n; ++img) {
    for (std::size_t th = 0; th < tiles_h; ++th) {
      for (std::size_t tw = 0; tw < tiles_w; ++tw) {
        const std::ptrdiff_t y0 = static_cast<std::ptrdiff_t>(th * mm) - pad;
        const std::ptrdiff_t x0 = static_cast<std::ptrdiff_t>(tw * mm) - pad;

        for (std::size_t c = 0; c < is.c; ++c) {
          // Gather the (possibly padded) input tile.
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              d[i * n + j] =
                  input.padded(img, c, y0 + static_cast<std::ptrdiff_t>(i),
                               x0 + static_cast<std::ptrdiff_t>(j));
            }
          }
          xf.transform_data(d, {u_all.data() + c * nsq, nsq});
        }

        for (std::size_t k = 0; k < kernel_count; ++k) {
          std::fill(acc_m.begin(), acc_m.end(), 0.0F);
          std::fill(acc_y.begin(), acc_y.end(), 0.0F);
          for (std::size_t c = 0; c < is.c; ++c) {
            const float* u = u_all.data() + c * nsq;
            const auto v = tk.v(k, c);
            if (opt.accumulation == AccumulationOrder::kTransformDomain) {
              for (std::size_t i = 0; i < nsq; ++i) acc_m[i] += u[i] * v[i];
            } else {
              for (std::size_t i = 0; i < nsq; ++i) prod[i] = u[i] * v[i];
              xf.inverse(prod, y);
              for (std::size_t i = 0; i < y.size(); ++i) acc_y[i] += y[i];
            }
          }
          if (opt.accumulation == AccumulationOrder::kTransformDomain) {
            xf.inverse(acc_m, acc_y);
          }

          // Scatter the m x m output tile, clipping the right/bottom edge.
          for (std::size_t i = 0; i < mm; ++i) {
            const std::size_t oy = th * mm + i;
            if (oy >= out_h) break;
            for (std::size_t j = 0; j < mm; ++j) {
              const std::size_t ox = tw * mm + j;
              if (ox >= out_w) break;
              out(img, k, oy, ox) = acc_y[i * mm + j];
            }
          }
        }
      }
    }
  }
  return out;
}

namespace {

/// Geometry and buffer pointers shared by the layout-aware executors; one
/// instance per conv2d_winograd_layout[_into] call, immutable during the
/// column walk.
struct LayoutConv {
  const float* src = nullptr;
  float* dst = nullptr;
  const TransformedKernels* tk = nullptr;
  const TileTransformer* xf = nullptr;
  tensor::Layout ol;
  bool fuse_relu = false;
  int pad = 0;
  std::size_t channels = 0, kernel_count = 0;
  std::size_t in_n = 0, in_h = 0, in_w = 0, out_h = 0, out_w = 0;
  std::size_t mm = 0, n = 0, nsq = 0;
  std::size_t tiles_h = 0, tiles_w = 0;
  bool in_tiled = false, out_tiled = false;
  std::size_t in_tm = 0, in_th_n = 0, in_tw_n = 0, in_tmsq = 0;

  /// Flattened tile-column count: (img, th, tw) in lexicographic order.
  [[nodiscard]] std::size_t columns() const {
    return in_n * tiles_h * tiles_w;
  }
};

/// Valid data extent of the gather window at tile position (th, tw).
struct Window {
  std::ptrdiff_t y0 = 0, x0 = 0;
  std::size_t i_lo = 0, i_hi = 0, j_lo = 0, j_hi = 0;
  bool padded = false;
};

Window make_window(const LayoutConv& g, std::size_t th, std::size_t tw) {
  Window w;
  w.y0 = static_cast<std::ptrdiff_t>(th * g.mm) - g.pad;
  w.x0 = static_cast<std::ptrdiff_t>(tw * g.mm) - g.pad;
  w.i_lo = w.y0 < 0 ? static_cast<std::size_t>(-w.y0) : 0;
  w.i_hi = std::min(g.n, static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                             0, static_cast<std::ptrdiff_t>(g.in_h) - w.y0)));
  w.j_lo = w.x0 < 0 ? static_cast<std::size_t>(-w.x0) : 0;
  w.j_hi = std::min(g.n, static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                             0, static_cast<std::ptrdiff_t>(g.in_w) - w.x0)));
  w.padded = w.i_lo > 0 || w.i_hi < g.n || w.j_lo > 0 || w.j_hi < g.n;
  return w;
}

/// Gather maps for the tile-form input: window row i / column j of the
/// current tile position resolves to a (source tile, offset within tile)
/// pair, so the per-element gather is a single indexed load — no division,
/// no validity branch (validity is the contiguous [lo, hi) span instead).
void build_gather_maps(const LayoutConv& g, const WinogradScratch& s,
                       const Window& w) {
  for (std::size_t i = w.i_lo; i < w.i_hi; ++i) {
    const auto gy =
        static_cast<std::size_t>(w.y0 + static_cast<std::ptrdiff_t>(i));
    s.row_tile[i] = gy / g.in_tm;
    s.row_in[i] = (gy % g.in_tm) * g.in_tm;
  }
  for (std::size_t j = w.j_lo; j < w.j_hi; ++j) {
    const auto gx =
        static_cast<std::size_t>(w.x0 + static_cast<std::ptrdiff_t>(j));
    s.col_off[j] = (gx / g.in_tm) * g.in_tmsq + gx % g.in_tm;
  }
}

/// Fill s.d with channel c of the gather window at (img, w).
void gather_channel(const LayoutConv& g, const WinogradScratch& s,
                    const Window& w, std::size_t img, std::size_t c) {
  const std::span<float> d = s.d;
  if (w.padded) std::fill(d.begin(), d.end(), 0.0F);
  if (!g.in_tiled) {
    const float* plane = g.src + (img * g.channels + c) * g.in_h * g.in_w;
    for (std::size_t i = w.i_lo; i < w.i_hi; ++i) {
      const float* rowp =
          plane +
          static_cast<std::size_t>(w.y0 + static_cast<std::ptrdiff_t>(i)) *
              g.in_w +
          static_cast<std::size_t>(w.x0 +
                                   static_cast<std::ptrdiff_t>(w.j_lo));
      float* drow = d.data() + i * g.n;
      // Plain loop, not std::copy: the span is a handful of floats, and a
      // memmove call per tile row costs more than the loads it performs.
      for (std::size_t j = w.j_lo; j < w.j_hi; ++j) {
        drow[j] = rowp[j - w.j_lo];
      }
    }
  } else {
    const std::size_t chan_base = (img * g.channels + c) * g.in_th_n;
    for (std::size_t i = w.i_lo; i < w.i_hi; ++i) {
      const float* row_ptr =
          g.src + (chan_base + s.row_tile[i]) * g.in_tw_n * g.in_tmsq +
          s.row_in[i];
      float* drow = d.data() + i * g.n;
      for (std::size_t j = w.j_lo; j < w.j_hi; ++j) {
        drow[j] = row_ptr[s.col_off[j]];
      }
    }
  }
}

/// Scatter acc_y (m*m) for kernel k at tile (img, th, tw) into the
/// requested output layout, clipping the ragged right/bottom edge.
void scatter_tile(const LayoutConv& g, std::span<const float> acc_y,
                  std::size_t img, std::size_t k, std::size_t th,
                  std::size_t tw) {
  const std::size_t mm = g.mm;
  const std::size_t ie = std::min(mm, g.out_h - th * mm);
  const std::size_t je = std::min(mm, g.out_w - tw * mm);
  if (!g.out_tiled) {
    float* out_plane =
        g.dst + (img * g.kernel_count + k) * g.out_h * g.out_w;
    for (std::size_t i = 0; i < ie; ++i) {
      float* orow = out_plane + (th * mm + i) * g.out_w + tw * mm;
      const float* ay = acc_y.data() + i * mm;
      if (g.fuse_relu) {
        for (std::size_t j = 0; j < je; ++j) {
          orow[j] = ay[j] > 0.0F ? ay[j] : 0.0F;
        }
      } else {
        for (std::size_t j = 0; j < je; ++j) orow[j] = ay[j];
      }
    }
  } else {
    // Tile-form scatter: one contiguous m*m block per (k, tile);
    // positions past the feature map edge hold zero, preserving the
    // layout's ragged-tile invariant (ReLU keeps 0 at 0).
    float* block = g.dst + tensor::winograd_tile_offset(g.ol, img, k, th, tw);
    if (ie == mm && je == mm) {
      if (g.fuse_relu) {
        for (std::size_t i = 0; i < mm * mm; ++i) {
          block[i] = acc_y[i] > 0.0F ? acc_y[i] : 0.0F;
        }
      } else {
        for (std::size_t i = 0; i < mm * mm; ++i) block[i] = acc_y[i];
      }
    } else {
      std::fill(block, block + mm * mm, 0.0F);
      for (std::size_t i = 0; i < ie; ++i) {
        for (std::size_t j = 0; j < je; ++j) {
          const float v = acc_y[i * mm + j];
          block[i * mm + j] = g.fuse_relu ? (v > 0.0F ? v : 0.0F) : v;
        }
      }
    }
  }
}

/// Decode flattened column index -> (img, th, tw).
void decode_column(const LayoutConv& g, std::size_t col, std::size_t& img,
                   std::size_t& th, std::size_t& tw) {
  const std::size_t per_img = g.tiles_h * g.tiles_w;
  img = col / per_img;
  const std::size_t rem = col % per_img;
  th = rem / g.tiles_w;
  tw = rem % g.tiles_w;
}

/// Per-tile (unfused) walk over columns [col_begin, col_end): the original
/// three-sweep executor, kept verbatim so both accumulation orders remain
/// available and so a block size of 1 never pays blocked-copy overhead.
void run_columns(const LayoutConv& g, const WinogradScratch& s,
                 AccumulationOrder order, std::size_t col_begin,
                 std::size_t col_end) {
  const TileTransformer& xf = *g.xf;
  const TransformedKernels& tk = *g.tk;
  const std::size_t nsq = g.nsq;
  const std::span<float> u_all = s.u_all;
  const std::span<float> prod = s.prod;
  const std::span<float> acc_m = s.acc_m;
  const std::span<float> y = s.y;
  const std::span<float> acc_y = s.acc_y;

  for (std::size_t col = col_begin; col < col_end; ++col) {
    std::size_t img = 0, th = 0, tw = 0;
    decode_column(g, col, img, th, tw);
    const Window w = make_window(g, th, tw);
    if (g.in_tiled) build_gather_maps(g, s, w);

    for (std::size_t c = 0; c < g.channels; ++c) {
      gather_channel(g, s, w, img, c);
      xf.transform_data(s.d, {u_all.data() + c * nsq, nsq});
    }

    // The accumulation-order branch is hoisted out of the channel loop
    // (the baseline tests it per channel): same arithmetic in the same
    // order, but the transform-domain inner loop — the hot path
    // nn::forward uses — stays branch-free.
    if (order == AccumulationOrder::kTransformDomain) {
      for (std::size_t k = 0; k < g.kernel_count; ++k) {
        std::fill(acc_m.begin(), acc_m.end(), 0.0F);
        for (std::size_t c = 0; c < g.channels; ++c) {
          const float* u = u_all.data() + c * nsq;
          const auto v = tk.v(k, c);
          for (std::size_t i = 0; i < nsq; ++i) acc_m[i] += u[i] * v[i];
        }
        xf.inverse(acc_m, acc_y);
        scatter_tile(g, acc_y, img, k, th, tw);
      }
    } else {
      for (std::size_t k = 0; k < g.kernel_count; ++k) {
        std::fill(acc_y.begin(), acc_y.end(), 0.0F);
        for (std::size_t c = 0; c < g.channels; ++c) {
          const float* u = u_all.data() + c * nsq;
          const auto v = tk.v(k, c);
          for (std::size_t i = 0; i < nsq; ++i) prod[i] = u[i] * v[i];
          xf.inverse(prod, y);
          for (std::size_t i = 0; i < y.size(); ++i) acc_y[i] += y[i];
        }
        scatter_tile(g, acc_y, img, k, th, tw);
      }
    }
  }
}

/// Fused tile-block pipeline over columns [col_begin, col_end), walked in
/// blocks of `block_columns` (transform-domain accumulation only): gather
/// and transform a block of columns into the [n^2][C][B] bank, run one
/// register-accumulating coordinate GEMM per (kernel, position) restricted
/// to the block's columns, then inverse-transform and scatter each column
/// while the block is still cache-hot.
///
/// Bit-identity with run_columns holds per element: for every (kernel,
/// column, position) the accumulator starts at 0 and adds u*v in strictly
/// ascending channel order — the same float operations in the same order,
/// only regrouped across *independent* columns. (This translation unit is
/// built with -ffp-contract=off, so the compiler cannot contract the
/// multiply-add differently in the two loops either.)
void run_columns_fused(const LayoutConv& g, const WinogradScratch& s,
                       std::size_t block_columns, std::size_t col_begin,
                       std::size_t col_end) {
  const TileTransformer& xf = *g.xf;
  const TransformedKernels& tk = *g.tk;
  const std::size_t nsq = g.nsq;
  const std::size_t C = g.channels;
  const std::size_t B = block_columns;
  const std::span<float> u_blk = s.u_blk;
  const std::span<float> acc_blk = s.acc_blk;
  const std::span<float> acc_m = s.acc_m;  // staging + inverse gather tile
  const std::span<float> acc_y = s.acc_y;

  for (std::size_t base = col_begin; base < col_end; base += B) {
    const std::size_t bcols = std::min(B, col_end - base);

    // Stage 1: gather + transform every column of the block into the
    // blocked bank u_blk[(e*C + c)*B + t].
    for (std::size_t t = 0; t < bcols; ++t) {
      std::size_t img = 0, th = 0, tw = 0;
      decode_column(g, base + t, img, th, tw);
      const Window w = make_window(g, th, tw);
      if (g.in_tiled) build_gather_maps(g, s, w);
      for (std::size_t c = 0; c < C; ++c) {
        gather_channel(g, s, w, img, c);
        xf.transform_data(s.d, acc_m);
        float* lane = u_blk.data() + c * B + t;
        for (std::size_t e = 0; e < nsq; ++e) lane[e * C * B] = acc_m[e];
      }
    }

    for (std::size_t k = 0; k < g.kernel_count; ++k) {
      // Stage 2: per-position coordinate GEMMs over the block's columns.
      // The t-register tile holds its partial sums across the whole
      // channel loop — one load per multiply-add instead of the per-tile
      // path's load-v/load-acc/store-acc triple.
      constexpr std::size_t kRegCols = 8;
      for (std::size_t e = 0; e < nsq; ++e) {
        const float* vp = tk.v_pos(k, e).data();
        const float* ue = u_blk.data() + e * C * B;
        float* accrow = acc_blk.data() + e * B;
        std::size_t t = 0;
        for (; t + kRegCols <= bcols; t += kRegCols) {
          float acc[kRegCols] = {};
          for (std::size_t c = 0; c < C; ++c) {
            const float vv = vp[c];
            const float* up = ue + c * B + t;
            for (std::size_t j = 0; j < kRegCols; ++j) {
              acc[j] += up[j] * vv;
            }
          }
          for (std::size_t j = 0; j < kRegCols; ++j) accrow[t + j] = acc[j];
        }
        for (; t < bcols; ++t) {
          float a = 0.0F;
          for (std::size_t c = 0; c < C; ++c) a += ue[c * B + t] * vp[c];
          accrow[t] = a;
        }
      }

      // Stage 3: inverse transform + (fused ReLU) scatter per column.
      for (std::size_t t = 0; t < bcols; ++t) {
        std::size_t img = 0, th = 0, tw = 0;
        decode_column(g, base + t, img, th, tw);
        for (std::size_t e = 0; e < nsq; ++e) acc_m[e] = acc_blk[e * B + t];
        xf.inverse(acc_m, acc_y);
        scatter_tile(g, acc_y, img, k, th, tw);
      }
    }
  }
}

/// Validate everything but the scratch and build the walk geometry.
LayoutConv make_layout_conv(const tensor::Layout& il,
                            std::span<const float> in,
                            const TransformedKernels& tk,
                            const TileTransformer& xf,
                            const WinogradConvOptions& opt,
                            const tensor::Layout& ol, std::span<float> out,
                            bool fuse_relu) {
  using tensor::LayoutKind;
  if (il.kind != LayoutKind::kNCHW && il.kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: input must be NCHW or Winograd-tile form");
  }
  if (ol.kind != LayoutKind::kNCHW && ol.kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output must be NCHW or Winograd-tile form");
  }
  if (in.size() != il.volume()) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: buffer size != layout volume");
  }
  const auto& is = il.shape;
  const auto r = static_cast<std::size_t>(xf.r());
  const auto tile = static_cast<std::size_t>(xf.tile());
  if (tk.tile_area() != tile * tile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: kernel bank transformed for another tile");
  }
  if (tk.channels() != is.c) {
    throw std::invalid_argument("conv2d_winograd_layout: channel mismatch");
  }
  const int pad = opt.pad;
  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output would be empty");
  }

  LayoutConv g;
  g.src = in.data();
  g.dst = out.data();
  g.tk = &tk;
  g.xf = &xf;
  g.ol = ol;
  g.fuse_relu = fuse_relu;
  g.pad = pad;
  g.channels = is.c;
  g.kernel_count = tk.kernel_count();
  g.in_n = is.n;
  g.in_h = is.h;
  g.in_w = is.w;
  g.out_h = static_cast<std::size_t>(oh);
  g.out_w = static_cast<std::size_t>(ow);
  g.mm = static_cast<std::size_t>(xf.m());
  g.n = tile;
  g.nsq = tile * tile;
  g.tiles_h = (g.out_h + g.mm - 1) / g.mm;
  g.tiles_w = (g.out_w + g.mm - 1) / g.mm;
  g.in_tiled = il.kind == LayoutKind::kWinogradTile;
  g.out_tiled = ol.kind == LayoutKind::kWinogradTile;
  g.in_tm = g.in_tiled ? il.tile_m : 1;  // unused for NCHW
  g.in_th_n = g.in_tiled ? il.tiles_h() : 0;
  g.in_tw_n = g.in_tiled ? il.tiles_w() : 0;
  g.in_tmsq = g.in_tm * g.in_tm;

  const tensor::Shape4 out_shape{is.n, g.kernel_count, g.out_h, g.out_w};
  if (!(ol.shape == out_shape) || (g.out_tiled && ol.tile_m != g.mm)) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output layout does not match this conv");
  }
  if (out.size() != ol.volume()) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output buffer size != layout volume");
  }
  return g;
}

/// Validate the scratch against the geometry; returns the fused block size
/// (>= 2) when the blocked spans engage the fused pipeline, 0 otherwise.
std::size_t validate_scratch(const LayoutConv& g, AccumulationOrder order,
                             const WinogradScratch& s) {
  const std::size_t nsq = g.nsq;
  const std::size_t mm = g.mm;
  if (s.d.size() != nsq || s.acc_m.size() != nsq ||
      s.y.size() != mm * mm || s.acc_y.size() != mm * mm ||
      s.row_tile.size() != g.n || s.row_in.size() != g.n ||
      s.col_off.size() != g.n) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: scratch size mismatch");
  }
  if (s.u_blk.empty()) {
    if (s.u_all.size() != g.channels * nsq || s.prod.size() != nsq) {
      throw std::invalid_argument(
          "conv2d_winograd_layout: scratch size mismatch");
    }
    return 0;
  }
  const std::size_t per_col = g.channels * nsq;
  const std::size_t block = s.u_blk.size() / per_col;
  if (block < 2 || s.u_blk.size() != block * per_col ||
      s.acc_blk.size() != block * nsq) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: blocked scratch size mismatch");
  }
  if (order != AccumulationOrder::kTransformDomain) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: fused blocks require transform-domain "
        "accumulation");
  }
  if (!s.u_all.empty() || !s.prod.empty()) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: blocked scratch must not carry the "
        "per-tile bank");
  }
  return block;
}

/// Heap-backed scratch for the allocating wrapper (one per worker chunk).
struct OwnedScratch {
  std::vector<float> f;
  std::vector<std::size_t> idx;
  WinogradScratch s;
};

OwnedScratch make_owned_scratch(std::size_t channels, std::size_t n,
                                std::size_t mm, std::size_t block_columns) {
  const std::size_t nsq = n * n;
  OwnedScratch o;
  const std::size_t bank = block_columns > 1
                               ? channels * nsq * block_columns + /*acc_blk*/
                                     nsq * block_columns
                               : channels * nsq + /*prod*/ nsq;
  o.f.resize(nsq + bank + nsq + mm * mm + mm * mm);
  o.idx.resize(3 * n);
  float* f = o.f.data();
  o.s.d = {f, nsq};
  f += nsq;
  if (block_columns > 1) {
    o.s.u_blk = {f, channels * nsq * block_columns};
    f += channels * nsq * block_columns;
    o.s.acc_blk = {f, nsq * block_columns};
    f += nsq * block_columns;
  } else {
    o.s.u_all = {f, channels * nsq};
    f += channels * nsq;
    o.s.prod = {f, nsq};
    f += nsq;
  }
  o.s.acc_m = {f, nsq};
  f += nsq;
  o.s.y = {f, mm * mm};
  f += mm * mm;
  o.s.acc_y = {f, mm * mm};
  o.s.row_tile = {o.idx.data(), n};
  o.s.row_in = {o.idx.data() + n, n};
  o.s.col_off = {o.idx.data() + 2 * n, n};
  return o;
}

}  // namespace

void conv2d_winograd_layout_into(const tensor::Layout& il,
                                 std::span<const float> in,
                                 const TransformedKernels& tk,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt,
                                 const tensor::Layout& ol,
                                 std::span<float> out, bool fuse_relu,
                                 const WinogradScratch& scratch) {
  const LayoutConv g =
      make_layout_conv(il, in, tk, xf, opt, ol, out, fuse_relu);
  const std::size_t block = validate_scratch(g, opt.accumulation, scratch);
  if (block >= 2) {
    run_columns_fused(g, scratch, block, 0, g.columns());
  } else {
    run_columns(g, scratch, opt.accumulation, 0, g.columns());
  }
}

tensor::PackedActivation conv2d_winograd_layout(
    const tensor::PackedActivation& input, const TransformedKernels& tk,
    const TileTransformer& xf, const WinogradConvOptions& opt,
    tensor::LayoutKind out_kind, bool fuse_relu) {
  using tensor::Layout;
  using tensor::LayoutKind;
  if (out_kind != LayoutKind::kNCHW &&
      out_kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output must be NCHW or Winograd-tile form");
  }
  const Layout& il = input.layout;
  const auto& is = il.shape;
  const auto r = static_cast<std::size_t>(xf.r());
  const int pad = opt.pad;
  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output would be empty");
  }
  const auto mm = static_cast<std::size_t>(xf.m());
  const tensor::Shape4 out_shape{is.n, tk.kernel_count(),
                                 static_cast<std::size_t>(oh),
                                 static_cast<std::size_t>(ow)};
  const Layout ol = out_kind == LayoutKind::kNCHW
                        ? Layout::nchw(out_shape)
                        : Layout::winograd_tile(out_shape, mm);
  tensor::PackedActivation out{ol, std::vector<float>(ol.volume())};

  const LayoutConv g =
      make_layout_conv(il, input.data, tk, xf, opt, ol, out.data, fuse_relu);
  const auto n = static_cast<std::size_t>(xf.tile());

  // Fused cache-blocked pipeline for the hot accumulation order; the
  // block loop is what the ThreadPool splits — every worker chunk owns a
  // private scratch and a contiguous column range, and per-column
  // arithmetic is independent of both the chunking and the block
  // boundaries, so any thread count produces the same bytes.
  std::size_t block =
      opt.accumulation == AccumulationOrder::kTransformDomain
          ? std::min(fused_block_columns(is.c, n, kFusedCacheBudgetBytes),
                     std::max<std::size_t>(1, g.columns()))
          : 1;
  if (block < kFusedMinBlockColumns) block = 1;  // all-scalar-tail: slower
  runtime::parallel_for(g.columns(), [&](std::size_t begin, std::size_t end) {
    const OwnedScratch o = make_owned_scratch(is.c, n, mm, block);
    if (block >= 2) {
      run_columns_fused(g, o.s, block, begin, end);
    } else {
      run_columns(g, o.s, opt.accumulation, begin, end);
    }
  });
  return out;
}

}  // namespace wino::winograd
