#include "winograd/kernels.hpp"

#include <algorithm>
#include <stdexcept>

namespace wino::winograd {

using tensor::Tensor4f;

TileTransformer::TileTransformer(const TransformSet& t)
    : m_(t.m), r_(t.r), n_(t.tile()), bt_(t.bt_f()), g_(t.g_f()),
      at_(t.at_f()) {}

void TileTransformer::sandwich(const FMatrix& mat, std::span<const float> in,
                               std::span<float> out) const {
  const std::size_t rows = mat.rows();
  const std::size_t cols = mat.cols();
  if (in.size() != cols * cols || out.size() != rows * rows) {
    throw std::invalid_argument("sandwich: tile size mismatch");
  }
  // tmp = mat * in  (rows x cols). Tile edges are tiny (n = m + r - 1 <= 6
  // for every supported F(m, r)), so the intermediate lives on the stack —
  // this runs per gathered tile in the conv hot loop, where a heap
  // allocation per call would dominate the arithmetic.
  float stack_buf[64];
  std::vector<float> heap_buf;
  float* tmp;
  if (rows * cols <= std::size(stack_buf)) {
    tmp = stack_buf;
  } else {
    heap_buf.resize(rows * cols);
    tmp = heap_buf.data();
  }
  std::fill(tmp, tmp + rows * cols, 0.0F);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < cols; ++k) {
      const float a = mat(i, k);
      if (a == 0.0F) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        tmp[i * cols + j] += a * in[k * cols + j];
      }
    }
  }
  // out = tmp * mat^T (rows x rows)
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      float acc = 0.0F;
      for (std::size_t k = 0; k < cols; ++k) {
        acc += tmp[i * cols + k] * mat(j, k);
      }
      out[i * rows + j] = acc;
    }
  }
}

void TileTransformer::transform_filter(std::span<const float> g,
                                       std::span<float> v) const {
  sandwich(g_, g, v);
}

void TileTransformer::transform_data(std::span<const float> d,
                                     std::span<float> u) const {
  sandwich(bt_, d, u);
}

void TileTransformer::inverse(std::span<const float> mm,
                              std::span<float> y) const {
  sandwich(at_, mm, y);
}

void TileTransformer::convolve_tile(std::span<const float> d,
                                    std::span<const float> g,
                                    std::span<float> y) const {
  const auto nsq = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  std::vector<float> u(nsq);
  std::vector<float> v(nsq);
  transform_data(d, u);
  transform_filter(g, v);
  for (std::size_t i = 0; i < nsq; ++i) u[i] *= v[i];
  inverse(u, y);
}

void TileTransformer::convolve_1d(std::span<const float> d,
                                  std::span<const float> g,
                                  std::span<float> y) const {
  const auto n = static_cast<std::size_t>(n_);
  if (d.size() != n || g.size() != static_cast<std::size_t>(r_) ||
      y.size() != static_cast<std::size_t>(m_)) {
    throw std::invalid_argument("convolve_1d: size mismatch");
  }
  std::vector<float> u(n, 0.0F);
  std::vector<float> v(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) u[i] += bt_(i, j) * d[j];
    for (std::size_t j = 0; j < g.size(); ++j) v[i] += g_(i, j) * g[j];
    u[i] *= v[i];
  }
  for (std::size_t k = 0; k < y.size(); ++k) {
    float acc = 0.0F;
    for (std::size_t i = 0; i < n; ++i) acc += at_(k, i) * u[i];
    y[k] = acc;
  }
}

TransformedKernels::TransformedKernels(const TileTransformer& xf,
                                       const Tensor4f& kernels)
    : kernels_(kernels.shape().n), channels_(kernels.shape().c),
      tile_sq_(static_cast<std::size_t>(xf.tile()) *
               static_cast<std::size_t>(xf.tile())) {
  const auto r = static_cast<std::size_t>(xf.r());
  if (kernels.shape().h != r || kernels.shape().w != r) {
    throw std::invalid_argument("TransformedKernels: kernel size != r x r");
  }
  data_.resize(kernels_ * channels_ * tile_sq_);
  std::vector<float> g(r * r);
  for (std::size_t k = 0; k < kernels_; ++k) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t u = 0; u < r; ++u) {
        for (std::size_t v = 0; v < r; ++v) g[u * r + v] = kernels(k, c, u, v);
      }
      xf.transform_filter(
          g, {data_.data() + (k * channels_ + c) * tile_sq_, tile_sq_});
    }
  }
}

Tensor4f conv2d_winograd(const Tensor4f& input, const Tensor4f& kernels,
                         int m, const WinogradConvOptions& opt) {
  const TileTransformer xf(
      transforms(m, static_cast<int>(kernels.shape().h)));
  return conv2d_winograd(input, kernels, xf, opt);
}

Tensor4f conv2d_winograd(const Tensor4f& input, const Tensor4f& kernels,
                         const TileTransformer& xf,
                         const WinogradConvOptions& opt) {
  const auto& ks = kernels.shape();
  const auto r = static_cast<std::size_t>(xf.r());
  if (ks.h != r || ks.w != r) {
    throw std::invalid_argument("conv2d_winograd: kernel shape mismatch");
  }
  const TransformedKernels tk(xf, kernels);
  return conv2d_winograd(input, tk, xf, opt);
}

Tensor4f conv2d_winograd(const Tensor4f& input, const TransformedKernels& tk,
                         const TileTransformer& xf,
                         const WinogradConvOptions& opt) {
  const auto& is = input.shape();
  const std::size_t kernel_count = tk.kernel_count();
  const auto r = static_cast<std::size_t>(xf.r());
  const auto tile = static_cast<std::size_t>(xf.tile());
  if (tk.tile_area() != tile * tile) {
    throw std::invalid_argument(
        "conv2d_winograd: kernel bank was transformed for a different tile");
  }
  if (tk.channels() != is.c) {
    throw std::invalid_argument("conv2d_winograd: channel mismatch");
  }
  const int pad = opt.pad;
  const std::ptrdiff_t oh =
      static_cast<std::ptrdiff_t>(is.h) + 2 * pad - static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow =
      static_cast<std::ptrdiff_t>(is.w) + 2 * pad - static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_winograd: output would be empty");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);

  const auto mm = static_cast<std::size_t>(xf.m());
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;

  Tensor4f out(is.n, kernel_count, out_h, out_w);

  std::vector<float> d(nsq);
  // Data transforms for all channels of the current tile, computed once
  // and shared across the K kernels — the software mirror of the paper's
  // first hardware contribution (Section IV-E): U is independent of k, so
  // recomputing it per kernel (as [3]'s PEs do) is redundant.
  std::vector<float> u_all(is.c * nsq);
  std::vector<float> prod(nsq);
  std::vector<float> acc_m(nsq);
  std::vector<float> y(mm * mm);
  std::vector<float> acc_y(mm * mm);

  for (std::size_t img = 0; img < is.n; ++img) {
    for (std::size_t th = 0; th < tiles_h; ++th) {
      for (std::size_t tw = 0; tw < tiles_w; ++tw) {
        const std::ptrdiff_t y0 = static_cast<std::ptrdiff_t>(th * mm) - pad;
        const std::ptrdiff_t x0 = static_cast<std::ptrdiff_t>(tw * mm) - pad;

        for (std::size_t c = 0; c < is.c; ++c) {
          // Gather the (possibly padded) input tile.
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              d[i * n + j] =
                  input.padded(img, c, y0 + static_cast<std::ptrdiff_t>(i),
                               x0 + static_cast<std::ptrdiff_t>(j));
            }
          }
          xf.transform_data(d, {u_all.data() + c * nsq, nsq});
        }

        for (std::size_t k = 0; k < kernel_count; ++k) {
          std::fill(acc_m.begin(), acc_m.end(), 0.0F);
          std::fill(acc_y.begin(), acc_y.end(), 0.0F);
          for (std::size_t c = 0; c < is.c; ++c) {
            const float* u = u_all.data() + c * nsq;
            const auto v = tk.v(k, c);
            if (opt.accumulation == AccumulationOrder::kTransformDomain) {
              for (std::size_t i = 0; i < nsq; ++i) acc_m[i] += u[i] * v[i];
            } else {
              for (std::size_t i = 0; i < nsq; ++i) prod[i] = u[i] * v[i];
              xf.inverse(prod, y);
              for (std::size_t i = 0; i < y.size(); ++i) acc_y[i] += y[i];
            }
          }
          if (opt.accumulation == AccumulationOrder::kTransformDomain) {
            xf.inverse(acc_m, acc_y);
          }

          // Scatter the m x m output tile, clipping the right/bottom edge.
          for (std::size_t i = 0; i < mm; ++i) {
            const std::size_t oy = th * mm + i;
            if (oy >= out_h) break;
            for (std::size_t j = 0; j < mm; ++j) {
              const std::size_t ox = tw * mm + j;
              if (ox >= out_w) break;
              out(img, k, oy, ox) = acc_y[i * mm + j];
            }
          }
        }
      }
    }
  }
  return out;
}

void conv2d_winograd_layout_into(const tensor::Layout& il,
                                 std::span<const float> in,
                                 const TransformedKernels& tk,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt,
                                 const tensor::Layout& ol,
                                 std::span<float> out, bool fuse_relu,
                                 const WinogradScratch& scratch) {
  using tensor::Layout;
  using tensor::LayoutKind;
  if (il.kind != LayoutKind::kNCHW &&
      il.kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: input must be NCHW or Winograd-tile form");
  }
  const LayoutKind out_kind = ol.kind;
  if (out_kind != LayoutKind::kNCHW &&
      out_kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output must be NCHW or Winograd-tile form");
  }
  if (in.size() != il.volume()) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: buffer size != layout volume");
  }
  const auto& is = il.shape;
  const std::size_t kernel_count = tk.kernel_count();
  const auto r = static_cast<std::size_t>(xf.r());
  const auto tile = static_cast<std::size_t>(xf.tile());
  if (tk.tile_area() != tile * tile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: kernel bank transformed for another tile");
  }
  if (tk.channels() != is.c) {
    throw std::invalid_argument("conv2d_winograd_layout: channel mismatch");
  }
  const int pad = opt.pad;
  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output would be empty");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);

  const auto mm = static_cast<std::size_t>(xf.m());
  const std::size_t n = tile;
  const std::size_t nsq = n * n;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;

  const tensor::Shape4 out_shape{is.n, kernel_count, out_h, out_w};
  if (!(ol.shape == out_shape) ||
      (out_kind == LayoutKind::kWinogradTile && ol.tile_m != mm)) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output layout does not match this conv");
  }
  if (out.size() != ol.volume()) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output buffer size != layout volume");
  }
  if (scratch.d.size() != nsq || scratch.u_all.size() != is.c * nsq ||
      scratch.prod.size() != nsq || scratch.acc_m.size() != nsq ||
      scratch.y.size() != mm * mm || scratch.acc_y.size() != mm * mm ||
      scratch.row_tile.size() != n || scratch.row_in.size() != n ||
      scratch.col_off.size() != n) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: scratch size mismatch");
  }

  // Input-side geometry for the tile-form gather.
  const std::size_t in_tm = il.kind == LayoutKind::kWinogradTile
                                ? il.tile_m
                                : 1;  // unused for NCHW
  const std::size_t in_th_n =
      il.kind == LayoutKind::kWinogradTile ? il.tiles_h() : 0;
  const std::size_t in_tw_n =
      il.kind == LayoutKind::kWinogradTile ? il.tiles_w() : 0;
  const std::size_t in_tmsq = in_tm * in_tm;

  const std::span<float> d = scratch.d;
  const std::span<float> u_all = scratch.u_all;
  const std::span<float> prod = scratch.prod;
  const std::span<float> acc_m = scratch.acc_m;
  const std::span<float> y = scratch.y;
  const std::span<float> acc_y = scratch.acc_y;

  const float* src = in.data();
  float* dst = out.data();
  const bool in_tiled = il.kind == LayoutKind::kWinogradTile;

  // Precomputed gather maps for the tile-form input: the window row i /
  // column j of the current tile position resolves to a (source tile,
  // offset within tile) pair. Rebuilt once per tile row / tile column, so
  // the per-element gather is a single indexed load — no division, no
  // validity branch (validity is a contiguous [lo, hi) span instead).
  const std::span<std::size_t> row_tile = scratch.row_tile;
  const std::span<std::size_t> row_in = scratch.row_in;
  const std::span<std::size_t> col_off = scratch.col_off;

  for (std::size_t img = 0; img < is.n; ++img) {
    for (std::size_t th = 0; th < tiles_h; ++th) {
      const std::ptrdiff_t y0 = static_cast<std::ptrdiff_t>(th * mm) - pad;
      // Valid window rows [i_lo, i_hi): inside the feature map.
      const std::size_t i_lo =
          y0 < 0 ? static_cast<std::size_t>(-y0) : 0;
      const std::size_t i_hi = std::min(
          n, static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                 0, static_cast<std::ptrdiff_t>(is.h) - y0)));
      if (in_tiled) {
        for (std::size_t i = i_lo; i < i_hi; ++i) {
          const auto gy = static_cast<std::size_t>(
              y0 + static_cast<std::ptrdiff_t>(i));
          row_tile[i] = gy / in_tm;
          row_in[i] = (gy % in_tm) * in_tm;
        }
      }
      for (std::size_t tw = 0; tw < tiles_w; ++tw) {
        const std::ptrdiff_t x0 = static_cast<std::ptrdiff_t>(tw * mm) - pad;
        const std::size_t j_lo =
            x0 < 0 ? static_cast<std::size_t>(-x0) : 0;
        const std::size_t j_hi = std::min(
            n, static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                   0, static_cast<std::ptrdiff_t>(is.w) - x0)));
        if (in_tiled) {
          for (std::size_t j = j_lo; j < j_hi; ++j) {
            const auto gx = static_cast<std::size_t>(
                x0 + static_cast<std::ptrdiff_t>(j));
            col_off[j] = (gx / in_tm) * in_tmsq + gx % in_tm;
          }
        }
        const bool padded_window =
            i_lo > 0 || i_hi < n || j_lo > 0 || j_hi < n;

        for (std::size_t c = 0; c < is.c; ++c) {
          if (padded_window) std::fill(d.begin(), d.end(), 0.0F);
          if (!in_tiled) {
            const float* plane = src + (img * is.c + c) * is.h * is.w;
            for (std::size_t i = i_lo; i < i_hi; ++i) {
              const float* rowp =
                  plane +
                  static_cast<std::size_t>(
                      y0 + static_cast<std::ptrdiff_t>(i)) *
                      is.w +
                  static_cast<std::size_t>(
                      x0 + static_cast<std::ptrdiff_t>(j_lo));
              float* drow = d.data() + i * n;
              // Plain loop, not std::copy: the span is a handful of
              // floats, and a memmove call per tile row costs more than
              // the loads it performs.
              for (std::size_t j = j_lo; j < j_hi; ++j) {
                drow[j] = rowp[j - j_lo];
              }
            }
          } else {
            const std::size_t chan_base = (img * is.c + c) * in_th_n;
            for (std::size_t i = i_lo; i < i_hi; ++i) {
              const float* row_ptr =
                  src + (chan_base + row_tile[i]) * in_tw_n * in_tmsq +
                  row_in[i];
              float* drow = d.data() + i * n;
              for (std::size_t j = j_lo; j < j_hi; ++j) {
                drow[j] = row_ptr[col_off[j]];
              }
            }
          }
          xf.transform_data(d, {u_all.data() + c * nsq, nsq});
        }

        // Valid output extent of this tile (ragged at the right/bottom).
        const std::size_t ie = std::min(mm, out_h - th * mm);
        const std::size_t je = std::min(mm, out_w - tw * mm);

        // Scatter acc_y into the requested output layout.
        const auto scatter = [&](std::size_t k) {
          if (out_kind == LayoutKind::kNCHW) {
            float* out_plane =
                dst + (img * kernel_count + k) * out_h * out_w;
            for (std::size_t i = 0; i < ie; ++i) {
              float* orow = out_plane + (th * mm + i) * out_w + tw * mm;
              const float* ay = acc_y.data() + i * mm;
              if (fuse_relu) {
                for (std::size_t j = 0; j < je; ++j) {
                  orow[j] = ay[j] > 0.0F ? ay[j] : 0.0F;
                }
              } else {
                for (std::size_t j = 0; j < je; ++j) orow[j] = ay[j];
              }
            }
          } else {
            // Tile-form scatter: one contiguous m*m block per (k, tile);
            // positions past the feature map edge hold zero, preserving
            // the layout's ragged-tile invariant (ReLU keeps 0 at 0).
            float* block =
                dst + tensor::winograd_tile_offset(ol, img, k, th, tw);
            if (ie == mm && je == mm) {
              if (fuse_relu) {
                for (std::size_t i = 0; i < mm * mm; ++i) {
                  block[i] = acc_y[i] > 0.0F ? acc_y[i] : 0.0F;
                }
              } else {
                for (std::size_t i = 0; i < mm * mm; ++i) {
                  block[i] = acc_y[i];
                }
              }
            } else {
              std::fill(block, block + mm * mm, 0.0F);
              for (std::size_t i = 0; i < ie; ++i) {
                for (std::size_t j = 0; j < je; ++j) {
                  const float v = acc_y[i * mm + j];
                  block[i * mm + j] =
                      fuse_relu ? (v > 0.0F ? v : 0.0F) : v;
                }
              }
            }
          }
        };

        // The accumulation-order branch is hoisted out of the channel
        // loop (the baseline tests it per channel): same arithmetic in
        // the same order, but the transform-domain inner loop — the hot
        // path nn::forward uses — stays branch-free.
        if (opt.accumulation == AccumulationOrder::kTransformDomain) {
          for (std::size_t k = 0; k < kernel_count; ++k) {
            std::fill(acc_m.begin(), acc_m.end(), 0.0F);
            for (std::size_t c = 0; c < is.c; ++c) {
              const float* u = u_all.data() + c * nsq;
              const auto v = tk.v(k, c);
              for (std::size_t i = 0; i < nsq; ++i) acc_m[i] += u[i] * v[i];
            }
            xf.inverse(acc_m, acc_y);
            scatter(k);
          }
        } else {
          for (std::size_t k = 0; k < kernel_count; ++k) {
            std::fill(acc_y.begin(), acc_y.end(), 0.0F);
            for (std::size_t c = 0; c < is.c; ++c) {
              const float* u = u_all.data() + c * nsq;
              const auto v = tk.v(k, c);
              for (std::size_t i = 0; i < nsq; ++i) prod[i] = u[i] * v[i];
              xf.inverse(prod, y);
              for (std::size_t i = 0; i < y.size(); ++i) acc_y[i] += y[i];
            }
            scatter(k);
          }
        }
      }
    }
  }
}

tensor::PackedActivation conv2d_winograd_layout(
    const tensor::PackedActivation& input, const TransformedKernels& tk,
    const TileTransformer& xf, const WinogradConvOptions& opt,
    tensor::LayoutKind out_kind, bool fuse_relu) {
  using tensor::Layout;
  using tensor::LayoutKind;
  if (out_kind != LayoutKind::kNCHW &&
      out_kind != LayoutKind::kWinogradTile) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output must be NCHW or Winograd-tile form");
  }
  const Layout& il = input.layout;
  const auto& is = il.shape;
  const auto r = static_cast<std::size_t>(xf.r());
  const int pad = opt.pad;
  const std::ptrdiff_t oh = static_cast<std::ptrdiff_t>(is.h) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow = static_cast<std::ptrdiff_t>(is.w) + 2 * pad -
                            static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv2d_winograd_layout: output would be empty");
  }
  const auto mm = static_cast<std::size_t>(xf.m());
  const tensor::Shape4 out_shape{is.n, tk.kernel_count(),
                                 static_cast<std::size_t>(oh),
                                 static_cast<std::size_t>(ow)};
  const Layout ol = out_kind == LayoutKind::kNCHW
                        ? Layout::nchw(out_shape)
                        : Layout::winograd_tile(out_shape, mm);
  tensor::PackedActivation out{ol, std::vector<float>(ol.volume())};

  // One-shot scratch matching carve_winograd_scratch's composition; the
  // allocation-free core does all remaining validation.
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;
  std::vector<float> fbuf(nsq + is.c * nsq + nsq + nsq + mm * mm + mm * mm);
  std::vector<std::size_t> ibuf(3 * n);
  WinogradScratch scratch;
  float* f = fbuf.data();
  scratch.d = {f, nsq};
  f += nsq;
  scratch.u_all = {f, is.c * nsq};
  f += is.c * nsq;
  scratch.prod = {f, nsq};
  f += nsq;
  scratch.acc_m = {f, nsq};
  f += nsq;
  scratch.y = {f, mm * mm};
  f += mm * mm;
  scratch.acc_y = {f, mm * mm};
  scratch.row_tile = {ibuf.data(), n};
  scratch.row_in = {ibuf.data() + n, n};
  scratch.col_off = {ibuf.data() + 2 * n, n};

  conv2d_winograd_layout_into(il, input.data, tk, xf, opt, ol, out.data,
                              fuse_relu, scratch);
  return out;
}

}  // namespace wino::winograd
