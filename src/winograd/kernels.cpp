#include "winograd/kernels.hpp"

#include <stdexcept>

namespace wino::winograd {

using tensor::Tensor4f;

TileTransformer::TileTransformer(const TransformSet& t)
    : m_(t.m), r_(t.r), n_(t.tile()), bt_(t.bt_f()), g_(t.g_f()),
      at_(t.at_f()) {}

void TileTransformer::sandwich(const FMatrix& mat, std::span<const float> in,
                               std::span<float> out) const {
  const std::size_t rows = mat.rows();
  const std::size_t cols = mat.cols();
  if (in.size() != cols * cols || out.size() != rows * rows) {
    throw std::invalid_argument("sandwich: tile size mismatch");
  }
  // tmp = mat * in  (rows x cols)
  std::vector<float> tmp(rows * cols, 0.0F);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < cols; ++k) {
      const float a = mat(i, k);
      if (a == 0.0F) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        tmp[i * cols + j] += a * in[k * cols + j];
      }
    }
  }
  // out = tmp * mat^T (rows x rows)
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      float acc = 0.0F;
      for (std::size_t k = 0; k < cols; ++k) {
        acc += tmp[i * cols + k] * mat(j, k);
      }
      out[i * rows + j] = acc;
    }
  }
}

void TileTransformer::transform_filter(std::span<const float> g,
                                       std::span<float> v) const {
  sandwich(g_, g, v);
}

void TileTransformer::transform_data(std::span<const float> d,
                                     std::span<float> u) const {
  sandwich(bt_, d, u);
}

void TileTransformer::inverse(std::span<const float> mm,
                              std::span<float> y) const {
  sandwich(at_, mm, y);
}

void TileTransformer::convolve_tile(std::span<const float> d,
                                    std::span<const float> g,
                                    std::span<float> y) const {
  const auto nsq = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  std::vector<float> u(nsq);
  std::vector<float> v(nsq);
  transform_data(d, u);
  transform_filter(g, v);
  for (std::size_t i = 0; i < nsq; ++i) u[i] *= v[i];
  inverse(u, y);
}

void TileTransformer::convolve_1d(std::span<const float> d,
                                  std::span<const float> g,
                                  std::span<float> y) const {
  const auto n = static_cast<std::size_t>(n_);
  if (d.size() != n || g.size() != static_cast<std::size_t>(r_) ||
      y.size() != static_cast<std::size_t>(m_)) {
    throw std::invalid_argument("convolve_1d: size mismatch");
  }
  std::vector<float> u(n, 0.0F);
  std::vector<float> v(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) u[i] += bt_(i, j) * d[j];
    for (std::size_t j = 0; j < g.size(); ++j) v[i] += g_(i, j) * g[j];
    u[i] *= v[i];
  }
  for (std::size_t k = 0; k < y.size(); ++k) {
    float acc = 0.0F;
    for (std::size_t i = 0; i < n; ++i) acc += at_(k, i) * u[i];
    y[k] = acc;
  }
}

TransformedKernels::TransformedKernels(const TileTransformer& xf,
                                       const Tensor4f& kernels)
    : kernels_(kernels.shape().n), channels_(kernels.shape().c),
      tile_sq_(static_cast<std::size_t>(xf.tile()) *
               static_cast<std::size_t>(xf.tile())) {
  const auto r = static_cast<std::size_t>(xf.r());
  if (kernels.shape().h != r || kernels.shape().w != r) {
    throw std::invalid_argument("TransformedKernels: kernel size != r x r");
  }
  data_.resize(kernels_ * channels_ * tile_sq_);
  std::vector<float> g(r * r);
  for (std::size_t k = 0; k < kernels_; ++k) {
    for (std::size_t c = 0; c < channels_; ++c) {
      for (std::size_t u = 0; u < r; ++u) {
        for (std::size_t v = 0; v < r; ++v) g[u * r + v] = kernels(k, c, u, v);
      }
      xf.transform_filter(
          g, {data_.data() + (k * channels_ + c) * tile_sq_, tile_sq_});
    }
  }
}

Tensor4f conv2d_winograd(const Tensor4f& input, const Tensor4f& kernels,
                         int m, const WinogradConvOptions& opt) {
  const TileTransformer xf(
      transforms(m, static_cast<int>(kernels.shape().h)));
  return conv2d_winograd(input, kernels, xf, opt);
}

Tensor4f conv2d_winograd(const Tensor4f& input, const Tensor4f& kernels,
                         const TileTransformer& xf,
                         const WinogradConvOptions& opt) {
  const auto& ks = kernels.shape();
  const auto r = static_cast<std::size_t>(xf.r());
  if (ks.h != r || ks.w != r) {
    throw std::invalid_argument("conv2d_winograd: kernel shape mismatch");
  }
  const TransformedKernels tk(xf, kernels);
  return conv2d_winograd(input, tk, xf, opt);
}

Tensor4f conv2d_winograd(const Tensor4f& input, const TransformedKernels& tk,
                         const TileTransformer& xf,
                         const WinogradConvOptions& opt) {
  const auto& is = input.shape();
  const std::size_t kernel_count = tk.kernel_count();
  const auto r = static_cast<std::size_t>(xf.r());
  const auto tile = static_cast<std::size_t>(xf.tile());
  if (tk.tile_area() != tile * tile) {
    throw std::invalid_argument(
        "conv2d_winograd: kernel bank was transformed for a different tile");
  }
  if (tk.channels() != is.c) {
    throw std::invalid_argument("conv2d_winograd: channel mismatch");
  }
  const int pad = opt.pad;
  const std::ptrdiff_t oh =
      static_cast<std::ptrdiff_t>(is.h) + 2 * pad - static_cast<std::ptrdiff_t>(r) + 1;
  const std::ptrdiff_t ow =
      static_cast<std::ptrdiff_t>(is.w) + 2 * pad - static_cast<std::ptrdiff_t>(r) + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d_winograd: output would be empty");
  }
  const auto out_h = static_cast<std::size_t>(oh);
  const auto out_w = static_cast<std::size_t>(ow);

  const auto mm = static_cast<std::size_t>(xf.m());
  const auto n = static_cast<std::size_t>(xf.tile());
  const std::size_t nsq = n * n;
  const std::size_t tiles_h = (out_h + mm - 1) / mm;
  const std::size_t tiles_w = (out_w + mm - 1) / mm;

  Tensor4f out(is.n, kernel_count, out_h, out_w);

  std::vector<float> d(nsq);
  // Data transforms for all channels of the current tile, computed once
  // and shared across the K kernels — the software mirror of the paper's
  // first hardware contribution (Section IV-E): U is independent of k, so
  // recomputing it per kernel (as [3]'s PEs do) is redundant.
  std::vector<float> u_all(is.c * nsq);
  std::vector<float> prod(nsq);
  std::vector<float> acc_m(nsq);
  std::vector<float> y(mm * mm);
  std::vector<float> acc_y(mm * mm);

  for (std::size_t img = 0; img < is.n; ++img) {
    for (std::size_t th = 0; th < tiles_h; ++th) {
      for (std::size_t tw = 0; tw < tiles_w; ++tw) {
        const std::ptrdiff_t y0 = static_cast<std::ptrdiff_t>(th * mm) - pad;
        const std::ptrdiff_t x0 = static_cast<std::ptrdiff_t>(tw * mm) - pad;

        for (std::size_t c = 0; c < is.c; ++c) {
          // Gather the (possibly padded) input tile.
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              d[i * n + j] =
                  input.padded(img, c, y0 + static_cast<std::ptrdiff_t>(i),
                               x0 + static_cast<std::ptrdiff_t>(j));
            }
          }
          xf.transform_data(d, {u_all.data() + c * nsq, nsq});
        }

        for (std::size_t k = 0; k < kernel_count; ++k) {
          std::fill(acc_m.begin(), acc_m.end(), 0.0F);
          std::fill(acc_y.begin(), acc_y.end(), 0.0F);
          for (std::size_t c = 0; c < is.c; ++c) {
            const float* u = u_all.data() + c * nsq;
            const auto v = tk.v(k, c);
            if (opt.accumulation == AccumulationOrder::kTransformDomain) {
              for (std::size_t i = 0; i < nsq; ++i) acc_m[i] += u[i] * v[i];
            } else {
              for (std::size_t i = 0; i < nsq; ++i) prod[i] = u[i] * v[i];
              xf.inverse(prod, y);
              for (std::size_t i = 0; i < y.size(); ++i) acc_y[i] += y[i];
            }
          }
          if (opt.accumulation == AccumulationOrder::kTransformDomain) {
            xf.inverse(acc_m, acc_y);
          }

          // Scatter the m x m output tile, clipping the right/bottom edge.
          for (std::size_t i = 0; i < mm; ++i) {
            const std::size_t oy = th * mm + i;
            if (oy >= out_h) break;
            for (std::size_t j = 0; j < mm; ++j) {
              const std::size_t ox = tw * mm + j;
              if (ox >= out_w) break;
              out(img, k, oy, ox) = acc_y[i * mm + j];
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace wino::winograd
