// Straight-line program representation of a constant linear transform
// y = M x, with operation classification and common-subexpression
// elimination.
//
// This is the bridge between the exact transform matrices and both sides of
// the paper's cost model:
//   * DSE arithmetic complexity (Eq 5): beta / gamma / delta are the
//     operation counts of the 2-D data / filter / inverse transform
//     programs;
//   * hardware cost (Table I): the resource estimator charges LUTs/FFs per
//     adder and per constant multiplier, and DSPs per generic multiplier,
//     so the program is effectively the netlist of a transform stage.
//
// Operation classes follow the paper's hardware discussion (Section IV-B):
// multiplications by +-2^k are realisable "using shifters and adders" and
// are therefore distinguished from generic constant multiplications.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rational.hpp"

namespace wino::winograd {

enum class OpKind {
  kAdd,       ///< dst = src_a + src_b
  kSub,       ///< dst = src_a - src_b
  kNeg,       ///< dst = -src_a
  kShiftMul,  ///< dst = src_a * c, |c| an integral power of two (or its
              ///< reciprocal): free-ish in fixed point, exponent-add in
              ///< float
  kConstMul,  ///< dst = src_a * c, generic constant
  kCopy       ///< dst = src_a (wiring, zero hardware cost)
};

/// One operation over the program's value slots. Slots [0, inputs) hold the
/// inputs; every op writes a fresh slot (SSA form).
struct Op {
  OpKind kind = OpKind::kCopy;
  std::size_t dst = 0;
  std::size_t src_a = 0;
  std::size_t src_b = 0;            ///< unused for unary ops
  common::Rational constant{1};     ///< used by kShiftMul / kConstMul
};

/// Aggregate operation counts of a program.
struct OpCounts {
  std::size_t adds = 0;        ///< kAdd + kSub
  std::size_t shifts = 0;      ///< kShiftMul
  std::size_t const_mults = 0; ///< kConstMul
  std::size_t negs = 0;        ///< kNeg (sign flip; free on adder ports)
  std::size_t copies = 0;

  /// Floating point instruction count in the sense of Lavin / the paper's
  /// Eq 5: every arithmetic instruction including constant scalings.
  [[nodiscard]] std::size_t flops() const {
    return adds + shifts + const_mults;
  }
  /// Count excluding power-of-two scalings, matching the paper's remark
  /// that those are implementable "using shifters" (Section IV-B).
  [[nodiscard]] std::size_t hw_ops() const { return adds + const_mults; }

  OpCounts& operator+=(const OpCounts& o) {
    adds += o.adds;
    shifts += o.shifts;
    const_mults += o.const_mults;
    negs += o.negs;
    copies += o.copies;
    return *this;
  }
  friend OpCounts operator*(OpCounts c, std::size_t k) {
    c.adds *= k;
    c.shifts *= k;
    c.const_mults *= k;
    c.negs *= k;
    c.copies *= k;
    return c;
  }
  friend OpCounts operator+(OpCounts a, const OpCounts& b) { return a += b; }
};

/// A straight-line evaluation of y = M x for a fixed rational matrix M.
///
/// Construction strategies:
///  * naive: per output row, scale each non-unit term then chain adds;
///  * cse:   additionally share scaled terms across rows and greedily
///           extract repeated signed pairs (classic two-term CSE), which is
///           how hand-optimised FPGA transform datapaths are written.
class LinearProgram {
 public:
  /// Build from matrix; `enable_cse` selects the optimised strategy.
  static LinearProgram from_matrix(const common::Matrix<common::Rational>& m,
                                   bool enable_cse = true);

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  [[nodiscard]] std::size_t inputs() const { return inputs_; }
  [[nodiscard]] std::size_t outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  /// Slot index (SSA value) feeding each output row; slots below inputs()
  /// are the inputs themselves, unwritten slots read as zero.
  [[nodiscard]] const std::vector<std::size_t>& output_slots() const {
    return output_slots_;
  }
  [[nodiscard]] std::size_t slot_count() const { return slots_; }

  /// Number of pipeline register stages a direct hardware mapping of this
  /// program needs: the depth of the operation DAG (longest chain).
  [[nodiscard]] std::size_t dag_depth() const;

  /// Interpret the program. in.size() must equal inputs(), out.size()
  /// outputs(). The result must match the defining matrix-vector product
  /// exactly in exact arithmetic (tests assert this in float/double).
  void execute(std::span<const float> in, std::span<float> out) const;
  void execute(std::span<const double> in, std::span<double> out) const;

  /// Human-readable listing for docs/debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  static LinearProgram build(const common::Matrix<common::Rational>& m,
                             int mode_tag);

  template <typename T>
  void run(std::span<const T> in, std::span<T> out) const;

  std::size_t inputs_ = 0;
  std::size_t outputs_ = 0;
  std::size_t slots_ = 0;
  std::vector<Op> ops_;
  std::vector<std::size_t> output_slots_;
  OpCounts counts_;
};

}  // namespace wino::winograd
