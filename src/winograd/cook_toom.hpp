// Cook-Toom construction of Winograd minimal filtering transforms F(m, r).
//
// Derivation used here (see also DESIGN.md section 3): the m-output,
// r-tap correlation is the transpose (Tellegen) of the Toom-Cook linear
// convolution of sizes m and r. With n = m + r - 1 evaluation points
// (n - 1 finite points a_i plus the point at infinity):
//
//   y = A^T [ (G g) . (B^T d) ]            (Lavin eq. 7 / paper eq. 2)
//
//   A^T (m x n):  column i = (a_i^0, ..., a_i^{m-1}) for finite points,
//                 last column = e_{m-1}                       (infinity)
//   G   (n x r):  row i = (a_i^0, ..., a_i^{r-1}) / N_i,
//                 N_i = prod_{j != i} (a_i - a_j); last row = e_{r-1}
//   B^T (n x n):  row i = coefficients of L_i(x) = prod_{j != i} (x - a_j),
//                 last row = coefficients of M(x) = prod_j (x - a_j)
//
// All arithmetic is exact (wino::common::Rational); the generated algorithm
// is verified against direct correlation symbolically in the test suite for
// every supported (m, r). The row/column sign conventions differ from
// Lavin's published matrices on some rows; the bilinear form they implement
// is identical (tests/winograd_cook_toom_test.cpp checks this exactly).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rational.hpp"

namespace wino::winograd {

using RMatrix = common::Matrix<common::Rational>;
using FMatrix = common::Matrix<float>;
using DMatrix = common::Matrix<double>;

/// The three transform matrices of a minimal filtering algorithm F(m, r),
/// kept in exact rational form together with float projections used by the
/// runtime kernels.
struct TransformSet {
  int m = 0;  ///< outputs per tile (1-D)
  int r = 0;  ///< filter taps
  RMatrix bt;  ///< data transform, n x n
  RMatrix g;   ///< filter transform, n x r
  RMatrix at;  ///< inverse transform, m x n
  std::vector<common::Rational> points;  ///< finite interpolation points

  [[nodiscard]] int tile() const { return m + r - 1; }  ///< n = m + r - 1

  [[nodiscard]] FMatrix bt_f() const;
  [[nodiscard]] FMatrix g_f() const;
  [[nodiscard]] FMatrix at_f() const;
  [[nodiscard]] DMatrix bt_d() const;
  [[nodiscard]] DMatrix g_d() const;
  [[nodiscard]] DMatrix at_d() const;
};

/// The default interpolation-point schedule, in the order used by Lavin's
/// wincnn tool: small-magnitude rationals first to keep transform entries
/// (and hence floating-point error and hardware constant-multiplier cost)
/// small. Returns the first `count` points of
///   0, 1, -1, 2, -2, 1/2, -1/2, 4, -4, 1/4, -1/4, 3, -3, 8, -8, ...
std::vector<common::Rational> default_points(int count);

/// Build F(m, r) from an explicit point set (must contain exactly
/// m + r - 2 pairwise-distinct finite points). Throws std::invalid_argument
/// on bad parameters or duplicate points.
TransformSet cook_toom(int m, int r,
                       const std::vector<common::Rational>& points);

/// Build F(m, r) with the default point schedule.
TransformSet cook_toom(int m, int r);

/// Search interpolation-point sets for F(m, r), minimising the total
/// CSE'd operation count of the three 2-D transform programs (the paper's
/// "optimization schemes for reducing the arithmetic and logic resource
/// costs of transforms"). Candidates are drawn from the small-magnitude
/// pool {0, +-1, +-2, +-1/2, +-4, +-1/4, +-3}; ties break toward smaller
/// transform entries (numerical stability). Deterministic.
TransformSet best_cook_toom(int m, int r);

/// Process-wide cache of cost-optimised transform sets (best_cook_toom);
/// reference stays valid for the program lifetime. Thread-safe lookup;
/// intended for single-threaded experiment drivers.
const TransformSet& transforms(int m, int r);

/// Lavin's canonical published matrices for F(2, 3) and F(4, 3), used as a
/// cross-check of the generator. (Row signs may differ from cook_toom();
/// the implemented bilinear forms are equal, which tests assert exactly.)
TransformSet lavin_f2x2_3x3();
TransformSet lavin_f4x4_3x3();

/// Exact correlation y_k = sum_j g_j d_{k+j} over rationals; the ground
/// truth for generator verification.
std::vector<common::Rational> direct_correlation(
    const std::vector<common::Rational>& d,
    const std::vector<common::Rational>& g, int m);

/// Apply a transform set symbolically: y = A^T[(G g) . (B^T d)] over
/// rationals. d.size() == m + r - 1, g.size() == r.
std::vector<common::Rational> apply_1d_exact(
    const TransformSet& t, const std::vector<common::Rational>& d,
    const std::vector<common::Rational>& g);

}  // namespace wino::winograd
