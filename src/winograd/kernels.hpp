// Runtime Winograd convolution kernels (float): 1-D F(m, r), 2-D nested
// F(m x m, r x r) tile operations, and full NCHW layer convolution.
//
// Layer-level evaluation mirrors the paper's system (Fig 7): the image is
// decomposed into overlapping (m+r-1)^2 tiles with stride m, kernels are
// pre-transformed once (V = G g G^T, Section IV "filter transforms are
// assumed to be precomputed"), and channel accumulation happens either in
// the transform domain (software-optimal, one inverse per output tile) or
// after the inverse transform (matching the hardware's accumulation
// buffers). Both orders are exposed because their equivalence is a linearity
// property the test suite checks.
#pragma once

#include <span>
#include <vector>

#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"
#include "winograd/cook_toom.hpp"

namespace wino::winograd {

/// Where the reduction over input channels is performed.
enum class AccumulationOrder {
  kTransformDomain,  ///< sum U_c . V_c over c, single inverse per tile
  kPostInverse       ///< inverse per channel, sum outputs (paper's Fig 7)
};

/// Precompiled float-domain tile transformer for one F(m x m, r x r).
/// Stateless after construction; safe to share across threads for reads.
class TileTransformer {
 public:
  explicit TileTransformer(const TransformSet& t);

  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] int r() const { return r_; }
  [[nodiscard]] int tile() const { return n_; }

  /// V = G g G^T. g: r*r row-major, v: n*n row-major.
  void transform_filter(std::span<const float> g, std::span<float> v) const;

  /// U = B^T d B. d: n*n row-major, u: n*n.
  void transform_data(std::span<const float> d, std::span<float> u) const;

  /// Y = A^T M A. mm: n*n, y: m*m.
  void inverse(std::span<const float> mm, std::span<float> y) const;

  /// Full tile convolution Y = A^T[(G g G^T) . (B^T d B)]A.
  void convolve_tile(std::span<const float> d, std::span<const float> g,
                     std::span<float> y) const;

  /// 1-D convolution y = A^T[(G g) . (B^T d)]; d has n elements, g has r,
  /// y has m.
  void convolve_1d(std::span<const float> d, std::span<const float> g,
                   std::span<float> y) const;

  /// The float inverse-transform matrix A^T (m rows x n cols). Exposed so
  /// consumers can batch many inverse transforms Y = A^T M A as two dense
  /// GEMMs on the shared runtime core (see hw/winograd_engine.cpp).
  [[nodiscard]] const FMatrix& at_matrix() const { return at_; }

 private:
  // Apply `mat` (rows x cols) along rows then columns of a square tile:
  // out = mat * in * mat^T, in: cols x cols, out: rows x rows.
  void sandwich(const FMatrix& mat, std::span<const float> in,
                std::span<float> out) const;

  int m_ = 0;
  int r_ = 0;
  int n_ = 0;
  FMatrix bt_;
  FMatrix g_;
  FMatrix at_;
};

/// Options for layer-level Winograd convolution.
struct WinogradConvOptions {
  int pad = 0;  ///< symmetric zero padding (VGG uses pad = 1 for r = 3)
  AccumulationOrder accumulation = AccumulationOrder::kTransformDomain;
};

/// Pre-transformed kernel bank: V tiles for K x C kernels, each n*n floats,
/// laid out [k][c][n*n] contiguously.
class TransformedKernels {
 public:
  TransformedKernels(const TileTransformer& xf,
                     const tensor::Tensor4f& kernels);

  [[nodiscard]] std::span<const float> v(std::size_t k, std::size_t c) const {
    return {data_.data() + (k * channels_ + c) * tile_sq_, tile_sq_};
  }
  [[nodiscard]] std::size_t kernel_count() const { return kernels_; }
  [[nodiscard]] std::size_t channels() const { return channels_; }
  /// Floats per transformed tile, (m+r-1)^2 for the transformer that
  /// built this bank; consumers validate it against their own transformer.
  [[nodiscard]] std::size_t tile_area() const { return tile_sq_; }

 private:
  std::size_t kernels_ = 0;
  std::size_t channels_ = 0;
  std::size_t tile_sq_ = 0;
  std::vector<float> data_;
};

/// Convolve an NCHW input with a KCrr kernel bank using F(m x m, r x r),
/// stride 1. Output spatial size is (H + 2 pad - r + 1) x (W + 2 pad - r + 1).
/// The result is numerically equivalent (up to float rounding) to
/// conv::conv2d_spatial; tests bound the difference.
tensor::Tensor4f conv2d_winograd(const tensor::Tensor4f& input,
                                 const tensor::Tensor4f& kernels, int m,
                                 const WinogradConvOptions& opt = {});

/// As above but with a caller-provided transformer (avoids transform
/// regeneration in inner loops).
tensor::Tensor4f conv2d_winograd(const tensor::Tensor4f& input,
                                 const tensor::Tensor4f& kernels,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt = {});

/// As above with the pre-transformed kernel bank supplied by the caller —
/// the serving path: filter transforms are computed once per (layer,
/// weights version) and reused across forward calls (see the cache in
/// nn/forward.cpp), matching the paper's "filter transforms are assumed
/// to be precomputed".
tensor::Tensor4f conv2d_winograd(const tensor::Tensor4f& input,
                                 const TransformedKernels& tk,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt = {});

/// Layout-aware layer convolution for the nn pipeline: the input may be
/// NCHW or Winograd-tile form (any producer tile edge), and the output is
/// produced directly in `out_kind` (kNCHW, or kWinogradTile with tile edge
/// m) — chains of Winograd layers hand activations tile-to-tile without
/// ever materialising the NCHW intermediate. `fuse_relu` folds the
/// elementwise max(x, 0) into the output scatter, replacing the separate
/// full-tensor ReLU pass.
///
/// Every output element is computed by exactly the arithmetic of
/// conv2d_winograd(input, tk, xf, opt) — the gather reads the same values,
/// the transform/accumulation order is untouched, and ReLU is the same
/// formula applied to the same result — so this path is bit-identical to
/// the always-NCHW path at every element, whatever mix of layouts carries
/// the activations (pinned by tests/nn_forward_test.cpp and
/// tests/tensor_layout_test.cpp).
tensor::PackedActivation conv2d_winograd_layout(
    const tensor::PackedActivation& input, const TransformedKernels& tk,
    const TileTransformer& xf, const WinogradConvOptions& opt,
    tensor::LayoutKind out_kind, bool fuse_relu);

/// Caller-provided scratch for conv2d_winograd_layout_into: the data tile
/// d, the per-channel transform bank u_all (C * n^2 floats), the
/// accumulation tiles, and the tile-form gather maps. Carved out of a
/// workspace slab by nn::carve_winograd_scratch, which is also the single
/// definition of each span's extent.
struct WinogradScratch {
  std::span<float> d;        ///< n*n gathered input tile
  std::span<float> u_all;    ///< C * n*n transformed data tiles
  std::span<float> prod;     ///< n*n elementwise product (post-inverse)
  std::span<float> acc_m;    ///< n*n transform-domain accumulator
  std::span<float> y;        ///< m*m inverse-transformed tile
  std::span<float> acc_y;    ///< m*m output-domain accumulator
  std::span<std::size_t> row_tile;  ///< tile-form gather: source tile row
  std::span<std::size_t> row_in;    ///< row-within-tile * tile_m
  std::span<std::size_t> col_off;   ///< tile-col * tile_m^2 + col-within
};

/// Allocation-free core of conv2d_winograd_layout: identical arithmetic in
/// the identical order, reading the input from `in` (described by `il`),
/// writing the output into `out` (described by `ol` — kNCHW or
/// kWinogradTile with the transformer's own m), with every intermediate in
/// caller-provided scratch. The plan executor in nn/forward.cpp runs every
/// Winograd conv layer through this against its per-thread workspace;
/// the allocating conv2d_winograd_layout wrapper delegates here, so the
/// two entry points cannot diverge numerically.
void conv2d_winograd_layout_into(const tensor::Layout& il,
                                 std::span<const float> in,
                                 const TransformedKernels& tk,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt,
                                 const tensor::Layout& ol,
                                 std::span<float> out, bool fuse_relu,
                                 const WinogradScratch& scratch);

}  // namespace wino::winograd
