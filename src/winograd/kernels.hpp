// Runtime Winograd convolution kernels (float): 1-D F(m, r), 2-D nested
// F(m x m, r x r) tile operations, and full NCHW layer convolution.
//
// Layer-level evaluation mirrors the paper's system (Fig 7): the image is
// decomposed into overlapping (m+r-1)^2 tiles with stride m, kernels are
// pre-transformed once (V = G g G^T, Section IV "filter transforms are
// assumed to be precomputed"), and channel accumulation happens either in
// the transform domain (software-optimal, one inverse per output tile) or
// after the inverse transform (matching the hardware's accumulation
// buffers). Both orders are exposed because their equivalence is a linearity
// property the test suite checks.
#pragma once

#include <span>
#include <vector>

#include "tensor/layout.hpp"
#include "tensor/tensor.hpp"
#include "winograd/cook_toom.hpp"

namespace wino::winograd {

/// Per-core cache budget in bytes, shared by the fused tile-block sizing
/// here and nn's cache-aware sub-batch split (plan_subbatch in
/// nn/forward.cpp): roughly one L2 slice. One constant so the two
/// locality decisions — how many images walk the stack together and how
/// many tile columns a fused block spans — can never drift apart.
inline constexpr std::size_t kFusedCacheBudgetBytes = 768u << 10;

/// Number of tile columns per fused block for a layer with `channels`
/// input channels and tile edge `tile`, sized so the block's transformed
/// data bank plus its accumulators occupy at most half of `budget_bytes`
/// (the other half is left to the V bank and the output working set),
/// clamped to kFusedMaxBlockColumns. Never returns 0.
[[nodiscard]] std::size_t fused_block_columns(std::size_t channels,
                                              std::size_t tile,
                                              std::size_t budget_bytes);

/// Widest block worth fusing: two column register tiles. The blocked bank
/// is re-streamed once per (kernel, position) pair, so its payoff is
/// amortising transform work across the register tile — not raw width.
/// Past ~2 tiles the bank starts spilling the L1 slice that the
/// per-position GEMM re-reads K times and throughput decays, worst for
/// shallow layers where the cache-budget formula alone would pick very
/// wide blocks (measured in bench/fused_pipeline.cpp: C = 8 columns at
/// B = 64 run ~15% slower than at B = 16). fused_block_columns clamps to
/// this, so wrapper, planner, and bench inherit one ceiling.
inline constexpr std::size_t kFusedMaxBlockColumns = 16;

/// Narrowest block worth fusing: the width of the coordinate GEMM's
/// column register tile. Below this every column lands in the scalar
/// tail and the blocked walk is strictly slower than the per-tile one
/// (measured in bench/fused_pipeline.cpp), so the allocating wrapper and
/// the memory planner fall back to the per-tile executor rather than
/// engage a sub-register-width block. conv2d_winograd_layout_into still
/// accepts any B >= 2 — correctness does not depend on the width, only
/// selection does.
inline constexpr std::size_t kFusedMinBlockColumns = 8;

/// Where the reduction over input channels is performed.
enum class AccumulationOrder {
  kTransformDomain,  ///< sum U_c . V_c over c, single inverse per tile
  kPostInverse       ///< inverse per channel, sum outputs (paper's Fig 7)
};

/// Precompiled float-domain tile transformer for one F(m x m, r x r).
/// Stateless after construction; safe to share across threads for reads.
class TileTransformer {
 public:
  explicit TileTransformer(const TransformSet& t);

  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] int r() const { return r_; }
  [[nodiscard]] int tile() const { return n_; }

  /// V = G g G^T. g: r*r row-major, v: n*n row-major.
  void transform_filter(std::span<const float> g, std::span<float> v) const;

  /// U = B^T d B. d: n*n row-major, u: n*n.
  void transform_data(std::span<const float> d, std::span<float> u) const;

  /// Y = A^T M A. mm: n*n, y: m*m.
  void inverse(std::span<const float> mm, std::span<float> y) const;

  /// Full tile convolution Y = A^T[(G g G^T) . (B^T d B)]A.
  void convolve_tile(std::span<const float> d, std::span<const float> g,
                     std::span<float> y) const;

  /// 1-D convolution y = A^T[(G g) . (B^T d)]; d has n elements, g has r,
  /// y has m.
  void convolve_1d(std::span<const float> d, std::span<const float> g,
                   std::span<float> y) const;

  /// The float inverse-transform matrix A^T (m rows x n cols). Exposed so
  /// consumers can batch many inverse transforms Y = A^T M A as two dense
  /// GEMMs on the shared runtime core (see hw/winograd_engine.cpp).
  [[nodiscard]] const FMatrix& at_matrix() const { return at_; }

 private:
  // Apply `mat` (rows x cols) along rows then columns of a square tile:
  // out = mat * in * mat^T, in: cols x cols, out: rows x rows.
  void sandwich(const FMatrix& mat, std::span<const float> in,
                std::span<float> out) const;

  int m_ = 0;
  int r_ = 0;
  int n_ = 0;
  FMatrix bt_;
  FMatrix g_;
  FMatrix at_;
};

/// Options for layer-level Winograd convolution.
struct WinogradConvOptions {
  int pad = 0;  ///< symmetric zero padding (VGG uses pad = 1 for r = 3)
  AccumulationOrder accumulation = AccumulationOrder::kTransformDomain;
};

/// Pre-transformed kernel bank: V tiles for K x C kernels, each n*n floats,
/// laid out [k][c][n*n] contiguously.
class TransformedKernels {
 public:
  TransformedKernels(const TileTransformer& xf,
                     const tensor::Tensor4f& kernels);

  [[nodiscard]] std::span<const float> v(std::size_t k, std::size_t c) const {
    return {data_.data() + (k * channels_ + c) * tile_sq_, tile_sq_};
  }
  /// Position-major view of the same values: all C channels of transform
  /// coordinate e for kernel k, contiguous in c. The fused block executor's
  /// coordinate GEMM streams this once per block (one scalar broadcast per
  /// channel) instead of re-reading the [k][c][n*n] bank once per tile.
  [[nodiscard]] std::span<const float> v_pos(std::size_t k,
                                             std::size_t e) const {
    return {pos_.data() + (k * tile_sq_ + e) * channels_, channels_};
  }
  [[nodiscard]] std::size_t kernel_count() const { return kernels_; }
  [[nodiscard]] std::size_t channels() const { return channels_; }
  /// Floats per transformed tile, (m+r-1)^2 for the transformer that
  /// built this bank; consumers validate it against their own transformer.
  [[nodiscard]] std::size_t tile_area() const { return tile_sq_; }

 private:
  std::size_t kernels_ = 0;
  std::size_t channels_ = 0;
  std::size_t tile_sq_ = 0;
  std::vector<float> data_;  ///< [k][c][n*n]
  std::vector<float> pos_;   ///< [k][n*n][c], same values re-ordered
};

/// Convolve an NCHW input with a KCrr kernel bank using F(m x m, r x r),
/// stride 1. Output spatial size is (H + 2 pad - r + 1) x (W + 2 pad - r + 1).
/// The result is numerically equivalent (up to float rounding) to
/// conv::conv2d_spatial; tests bound the difference.
tensor::Tensor4f conv2d_winograd(const tensor::Tensor4f& input,
                                 const tensor::Tensor4f& kernels, int m,
                                 const WinogradConvOptions& opt = {});

/// As above but with a caller-provided transformer (avoids transform
/// regeneration in inner loops).
tensor::Tensor4f conv2d_winograd(const tensor::Tensor4f& input,
                                 const tensor::Tensor4f& kernels,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt = {});

/// As above with the pre-transformed kernel bank supplied by the caller —
/// the serving path: filter transforms are computed once per (layer,
/// weights version) and reused across forward calls (see the cache in
/// nn/forward.cpp), matching the paper's "filter transforms are assumed
/// to be precomputed".
tensor::Tensor4f conv2d_winograd(const tensor::Tensor4f& input,
                                 const TransformedKernels& tk,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt = {});

/// Layout-aware layer convolution for the nn pipeline: the input may be
/// NCHW or Winograd-tile form (any producer tile edge), and the output is
/// produced directly in `out_kind` (kNCHW, or kWinogradTile with tile edge
/// m) — chains of Winograd layers hand activations tile-to-tile without
/// ever materialising the NCHW intermediate. `fuse_relu` folds the
/// elementwise max(x, 0) into the output scatter, replacing the separate
/// full-tensor ReLU pass.
///
/// Every output element is computed by exactly the arithmetic of
/// conv2d_winograd(input, tk, xf, opt) — the gather reads the same values,
/// the transform/accumulation order is untouched, and ReLU is the same
/// formula applied to the same result — so this path is bit-identical to
/// the always-NCHW path at every element, whatever mix of layouts carries
/// the activations (pinned by tests/nn_forward_test.cpp and
/// tests/tensor_layout_test.cpp).
///
/// This wrapper runs the fused tile-block pipeline (see WinogradScratch)
/// with a cache-budget block size, and threads the *block loop* across the
/// deterministic ThreadPool: each worker owns a private scratch and a
/// contiguous range of tile columns. Every (kernel, column, position)
/// accumulator chain is confined to one column, so the result is
/// bit-identical for any thread count and any block boundary placement
/// (pinned by tests/winograd_fused_test.cpp).
tensor::PackedActivation conv2d_winograd_layout(
    const tensor::PackedActivation& input, const TransformedKernels& tk,
    const TileTransformer& xf, const WinogradConvOptions& opt,
    tensor::LayoutKind out_kind, bool fuse_relu);

/// Caller-provided scratch for conv2d_winograd_layout_into: the data tile
/// d, the accumulation tiles, and the tile-form gather maps. Carved out of
/// a workspace slab by nn::carve_winograd_scratch, which is also the
/// single definition of each span's extent.
///
/// Two mutually exclusive executor modes share this struct:
///  - per-tile (unfused): u_all and prod are populated, u_blk/acc_blk are
///    empty — one tile column at a time, either accumulation order;
///  - fused tile-block pipeline: u_blk holds B tile columns of transformed
///    data laid out [n*n][C][B] and acc_blk the matching [n*n][B]
///    accumulators (B = u_blk.size() / (C * n*n) >= 2, transform-domain
///    accumulation only) — u_all and prod must then be empty, and acc_m
///    doubles as the per-column transform staging / inverse gather tile.
struct WinogradScratch {
  std::span<float> d;        ///< n*n gathered input tile
  std::span<float> u_all;    ///< C * n*n transformed data tiles (unfused)
  std::span<float> prod;     ///< n*n elementwise product (post-inverse)
  std::span<float> u_blk;    ///< [n*n][C][B] blocked transform bank (fused)
  std::span<float> acc_blk;  ///< [n*n][B] blocked accumulators (fused)
  std::span<float> acc_m;    ///< n*n transform-domain accumulator / staging
  std::span<float> y;        ///< m*m inverse-transformed tile
  std::span<float> acc_y;    ///< m*m output-domain accumulator
  std::span<std::size_t> row_tile;  ///< tile-form gather: source tile row
  std::span<std::size_t> row_in;    ///< row-within-tile * tile_m
  std::span<std::size_t> col_off;   ///< tile-col * tile_m^2 + col-within
};

/// Allocation-free core of conv2d_winograd_layout: identical arithmetic in
/// the identical order, reading the input from `in` (described by `il`),
/// writing the output into `out` (described by `ol` — kNCHW or
/// kWinogradTile with the transformer's own m), with every intermediate in
/// caller-provided scratch. The plan executor in nn/forward.cpp runs every
/// Winograd conv layer through this against its per-thread workspace;
/// the allocating conv2d_winograd_layout wrapper delegates here, so the
/// two entry points cannot diverge numerically.
///
/// The scratch selects the executor (see WinogradScratch): blocked spans
/// engage the fused tile-block pipeline, which walks the caller's columns
/// sequentially in B-sized blocks. It deliberately does not spawn its own
/// parallel_for — the hot caller (nn/forward.cpp) already fans out across
/// images above this call with exactly one carved scratch per workspace,
/// so intra-call threading belongs to the allocating wrapper, which owns
/// per-worker scratch.
void conv2d_winograd_layout_into(const tensor::Layout& il,
                                 std::span<const float> in,
                                 const TransformedKernels& tk,
                                 const TileTransformer& xf,
                                 const WinogradConvOptions& opt,
                                 const tensor::Layout& ol,
                                 std::span<float> out, bool fuse_relu,
                                 const WinogradScratch& scratch);

}  // namespace wino::winograd
