// Analytic numerical-error model for minimal filtering algorithms.
//
// The forward-error bound for Y = A^T[(G g G^T) . (B^T d B)]A scales with
// the magnitudes of the transform matrices: each stage multiplies the
// worst-case amplification by its max-absolute-row-sum (infinity) norm,
// and the 2-D nesting squares it. The resulting amplification factor
//     kappa(m, r) = (||B^T||_inf * ||G||_inf * ||A^T||_inf)^2
// explains the error growth the ablation bench measures empirically and
// quantifies why fp32 Winograd is limited to moderate m (and why
// fixed-point needs guard bits that grow with m).
#pragma once

#include "winograd/cook_toom.hpp"

namespace wino::winograd {

/// Infinity norm (max absolute row sum) of a rational matrix, exact.
common::Rational inf_norm(const RMatrix& m);

/// Error-amplification summary of one transform set.
struct ErrorModel {
  double bt_norm = 0;   ///< ||B^T||_inf
  double g_norm = 0;    ///< ||G||_inf
  double at_norm = 0;   ///< ||A^T||_inf
  double kappa_1d = 0;  ///< product of the three norms
  double kappa_2d = 0;  ///< kappa_1d^2 (nested transform)

  /// First-order fp32 error estimate for inputs bounded by `magnitude`:
  /// kappa_2d * magnitude * 2^-24 (unit roundoff of binary32).
  [[nodiscard]] double fp32_error_estimate(double magnitude = 1.0) const;

  /// Integer guard bits a fixed-point datapath needs so intermediates do
  /// not saturate for inputs in [-1, 1]: ceil(log2(max stage gain)).
  [[nodiscard]] int required_guard_bits() const;
};

ErrorModel error_model(const TransformSet& t);
ErrorModel error_model(int m, int r);

}  // namespace wino::winograd
