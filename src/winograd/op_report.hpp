// Per-tile 2-D transform operation counts (beta, gamma, delta) derived from
// the generated LinearPrograms. These are the inputs to the paper's Eq 5
// transform-complexity model and to the FPGA resource estimator.
#pragma once

#include "winograd/cook_toom.hpp"
#include "winograd/program.hpp"

namespace wino::winograd {

/// Operation counts for each transform of one F(m x m, r x r), both for a
/// single 1-D application and for a full 2-D tile.
///
/// A 2-D transform applies its 1-D program along both tile axes:
///   data    U = B^T d B : 2n applications of the B^T program,
///   filter  V = G g G^T : (r + n) applications of the G program,
///   inverse Y = A^T M A : (n + m) applications of the A^T program,
/// with n = m + r - 1 (Lavin's counting, reproduced in the paper's Eq 5).
struct TransformOpReport {
  int m = 0;
  int r = 0;
  OpCounts data_1d;
  OpCounts filter_1d;
  OpCounts inverse_1d;
  OpCounts data_2d;     ///< beta in Eq 5, as FLOP count via .flops()
  OpCounts filter_2d;   ///< gamma
  OpCounts inverse_2d;  ///< delta
  std::size_t data_depth = 0;     ///< DAG depth of the 1-D data program
  std::size_t inverse_depth = 0;  ///< DAG depth of the 1-D inverse program

  [[nodiscard]] std::size_t beta() const { return data_2d.flops(); }
  [[nodiscard]] std::size_t gamma() const { return filter_2d.flops(); }
  [[nodiscard]] std::size_t delta() const { return inverse_2d.flops(); }
};

/// Build the report for F(m, r) with the default interpolation points.
/// `optimised` selects CSE'd programs (hand-optimised-hardware equivalent)
/// versus naive row evaluation.
TransformOpReport transform_op_report(int m, int r, bool optimised = true);

/// Build the report for an explicit transform set.
TransformOpReport transform_op_report(const TransformSet& t,
                                      bool optimised = true);

}  // namespace wino::winograd
