#include "winograd/error_model.hpp"

#include <cmath>

namespace wino::winograd {

common::Rational inf_norm(const RMatrix& m) {
  common::Rational worst(0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    common::Rational row(0);
    for (std::size_t j = 0; j < m.cols(); ++j) row += m(i, j).abs();
    if (row > worst) worst = row;
  }
  return worst;
}

double ErrorModel::fp32_error_estimate(double magnitude) const {
  return kappa_2d * magnitude * std::pow(2.0, -24);
}

int ErrorModel::required_guard_bits() const {
  // The largest intermediate for unit inputs appears after the 2-D data
  // transform (gain ||B^T||_inf^2) or after the elementwise product with
  // the transformed filter (additional ||G||_inf^2).
  const double gain = bt_norm * bt_norm * g_norm * g_norm;
  return static_cast<int>(std::ceil(std::log2(std::max(1.0, gain))));
}

ErrorModel error_model(const TransformSet& t) {
  ErrorModel e;
  e.bt_norm = inf_norm(t.bt).to_double();
  e.g_norm = inf_norm(t.g).to_double();
  e.at_norm = inf_norm(t.at).to_double();
  e.kappa_1d = e.bt_norm * e.g_norm * e.at_norm;
  e.kappa_2d = e.kappa_1d * e.kappa_1d;
  return e;
}

ErrorModel error_model(int m, int r) { return error_model(transforms(m, r)); }

}  // namespace wino::winograd
