#include "winograd/program.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace wino::winograd {

using common::Matrix;
using common::Rational;

namespace {

/// A row under construction: signed references to value slots, to be summed.
struct Term {
  std::size_t slot = 0;
  bool negative = false;
};

struct RowBuild {
  std::vector<Term> terms;
  Rational post_scale{1};  ///< applied after the summation (row factoring)
};

bool is_pow2_abs(const Rational& r) { return r.is_pow2_scaled(); }

/// Normalise a row of rational coefficients to integer coefficients with
/// gcd 1, returning the extracted scalar factor (coeffs = factor * ints).
Rational integer_normalise(std::vector<Rational>& coeffs) {
  // Common denominator.
  std::int64_t den = 1;
  for (const auto& c : coeffs) {
    if (!c.is_zero()) den = std::lcm(den, c.den());
  }
  std::int64_t gcd = 0;
  for (auto& c : coeffs) {
    c *= Rational(den);
    gcd = std::gcd(gcd, c.num());
  }
  if (gcd == 0) return Rational(1);  // all-zero row
  for (auto& c : coeffs) c /= Rational(gcd);
  return Rational(gcd, den);
}

}  // namespace

namespace {
enum class BuildMode { kNaive, kCseNormalised, kCseRaw };
}  // namespace

LinearProgram LinearProgram::build(const Matrix<Rational>& m, int mode_tag) {
  const auto mode = static_cast<BuildMode>(mode_tag);
  const bool enable_cse = mode != BuildMode::kNaive;
  const bool normalise_rows = mode == BuildMode::kCseNormalised;
  LinearProgram p;
  p.inputs_ = m.cols();
  p.outputs_ = m.rows();
  p.slots_ = p.inputs_;
  p.output_slots_.assign(p.outputs_, 0);

  const auto new_slot = [&p] { return p.slots_++; };

  // Reserved all-zero slot for structurally zero rows (slot values default
  // to zero in the interpreter).
  const std::size_t zero_slot = new_slot();

  const auto emit = [&p](Op op) -> std::size_t {
    switch (op.kind) {
      case OpKind::kAdd:
      case OpKind::kSub:
        ++p.counts_.adds;
        break;
      case OpKind::kShiftMul:
        ++p.counts_.shifts;
        break;
      case OpKind::kConstMul:
        ++p.counts_.const_mults;
        break;
      case OpKind::kNeg:
        ++p.counts_.negs;
        break;
      case OpKind::kCopy:
        ++p.counts_.copies;
        break;
    }
    p.ops_.push_back(op);
    return op.dst;
  };

  // Shared cache of scaled inputs: (input slot, |constant|) -> slot.
  std::map<std::pair<std::size_t, std::pair<std::int64_t, std::int64_t>>,
           std::size_t>
      scaled_cache;
  const auto scaled = [&](std::size_t src, const Rational& c) -> Term {
    const Rational a = c.abs();
    if (a.is_one()) return Term{src, c < Rational(0)};
    const auto key = std::make_pair(src, std::make_pair(a.num(), a.den()));
    if (enable_cse) {
      if (const auto it = scaled_cache.find(key); it != scaled_cache.end()) {
        return Term{it->second, c < Rational(0)};
      }
    }
    Op op;
    op.kind = is_pow2_abs(a) ? OpKind::kShiftMul : OpKind::kConstMul;
    op.dst = new_slot();
    op.src_a = src;
    op.constant = a;
    emit(op);
    if (enable_cse) scaled_cache[key] = op.dst;
    return Term{op.dst, c < Rational(0)};
  };

  // Stage 1: convert rows to signed-term form.
  std::vector<RowBuild> rows(p.outputs_);
  for (std::size_t r = 0; r < p.outputs_; ++r) {
    std::vector<Rational> coeffs(p.inputs_);
    for (std::size_t c = 0; c < p.inputs_; ++c) coeffs[c] = m(r, c);
    Rational factor(1);
    if (normalise_rows) factor = integer_normalise(coeffs);
    rows[r].post_scale = factor;
    for (std::size_t c = 0; c < p.inputs_; ++c) {
      if (coeffs[c].is_zero()) continue;
      rows[r].terms.push_back(scaled(c, coeffs[c]));
    }
  }

  // Stage 2: greedy extraction of repeated signed pairs across rows.
  if (enable_cse) {
    for (;;) {
      // Canonical pair key: (slot_lo, slot_hi, relative sign), where the
      // overall sign is normalised so the low slot is positive.
      struct PairKey {
        std::size_t lo, hi;
        bool opposite;
        auto operator<=>(const PairKey&) const = default;
      };
      std::map<PairKey, int> freq;
      for (const auto& row : rows) {
        for (std::size_t i = 0; i < row.terms.size(); ++i) {
          for (std::size_t j = i + 1; j < row.terms.size(); ++j) {
            Term a = row.terms[i];
            Term b = row.terms[j];
            if (a.slot == b.slot) continue;
            if (a.slot > b.slot) std::swap(a, b);
            ++freq[{a.slot, b.slot, a.negative != b.negative}];
          }
        }
      }
      auto best = freq.end();
      for (auto it = freq.begin(); it != freq.end(); ++it) {
        if (it->second >= 2 &&
            (best == freq.end() || it->second > best->second)) {
          best = it;
        }
      }
      if (best == freq.end()) break;

      const auto [lo, hi, opposite] = best->first;
      Op op;
      op.kind = opposite ? OpKind::kSub : OpKind::kAdd;
      op.dst = new_slot();
      op.src_a = lo;
      op.src_b = hi;
      const std::size_t pair_slot = emit(op);

      for (auto& row : rows) {
        // Find an occurrence of the pair (possibly globally negated).
        for (std::size_t i = 0; i < row.terms.size(); ++i) {
          bool replaced = false;
          for (std::size_t j = i + 1; j < row.terms.size(); ++j) {
            Term a = row.terms[i];
            Term b = row.terms[j];
            if (a.slot == b.slot) continue;
            bool negated = false;
            if (a.slot > b.slot) std::swap(a, b);
            if (a.slot != lo || b.slot != hi) continue;
            if ((a.negative != b.negative) != opposite) continue;
            // Matches the pair shape; the instance is negated when the low
            // slot appears with a minus sign.
            negated = a.negative;
            row.terms.erase(row.terms.begin() + static_cast<std::ptrdiff_t>(j));
            row.terms.erase(row.terms.begin() + static_cast<std::ptrdiff_t>(i));
            row.terms.push_back(Term{pair_slot, negated});
            replaced = true;
            break;
          }
          if (replaced) break;
        }
      }
    }
  }

  // Stage 3: realise each row as an add/sub chain plus optional post scale.
  for (std::size_t r = 0; r < p.outputs_; ++r) {
    auto& row = rows[r];
    std::size_t acc;
    if (row.terms.empty()) {
      acc = zero_slot;
    } else {
      // Prefer a positive leading term to avoid a negation op.
      const auto lead = std::find_if(row.terms.begin(), row.terms.end(),
                                     [](const Term& t) { return !t.negative; });
      if (lead != row.terms.end()) std::iter_swap(row.terms.begin(), lead);

      if (row.terms.front().negative) {
        // All terms negative: sum positives, negate once at the end.
        row.post_scale = -row.post_scale;
        for (auto& t : row.terms) t.negative = false;
      }
      acc = row.terms.front().slot;
      for (std::size_t i = 1; i < row.terms.size(); ++i) {
        Op op;
        op.kind = row.terms[i].negative ? OpKind::kSub : OpKind::kAdd;
        op.dst = new_slot();
        op.src_a = acc;
        op.src_b = row.terms[i].slot;
        acc = emit(op);
      }
    }
    if (!row.post_scale.is_one()) {
      if (row.post_scale == Rational(-1)) {
        Op op;
        op.kind = OpKind::kNeg;
        op.dst = new_slot();
        op.src_a = acc;
        acc = emit(op);
      } else {
        Op op;
        op.kind = is_pow2_abs(row.post_scale) ? OpKind::kShiftMul
                                              : OpKind::kConstMul;
        op.dst = new_slot();
        op.src_a = acc;
        op.constant = row.post_scale;
        acc = emit(op);
      }
    }
    p.output_slots_[r] = acc;
  }

  return p;
}

LinearProgram LinearProgram::from_matrix(const Matrix<Rational>& m,
                                         bool enable_cse) {
  if (!enable_cse) return build(m, static_cast<int>(BuildMode::kNaive));
  // Row factoring (pulling a common rational scale out of a row) wins on
  // filter transforms with 1/N_i rows but can lose on Vandermonde-like
  // inverse transforms; build both and keep the cheaper netlist, breaking
  // ties toward fewer generic multipliers (the expensive resource).
  LinearProgram norm = build(m, static_cast<int>(BuildMode::kCseNormalised));
  LinearProgram raw = build(m, static_cast<int>(BuildMode::kCseRaw));
  const auto cost = [](const LinearProgram& p) {
    return std::make_pair(p.counts().flops(), p.counts().const_mults);
  };
  return cost(norm) <= cost(raw) ? std::move(norm) : std::move(raw);
}

std::size_t LinearProgram::dag_depth() const {
  std::vector<std::size_t> depth(slots_, 0);
  for (const Op& op : ops_) {
    std::size_t d = depth[op.src_a];
    if (op.kind == OpKind::kAdd || op.kind == OpKind::kSub) {
      d = std::max(d, depth[op.src_b]);
    }
    depth[op.dst] = d + 1;
  }
  std::size_t worst = 0;
  for (const std::size_t s : output_slots_) worst = std::max(worst, depth[s]);
  return worst;
}

template <typename T>
void LinearProgram::run(std::span<const T> in, std::span<T> out) const {
  if (in.size() != inputs_ || out.size() != outputs_) {
    throw std::invalid_argument("LinearProgram::execute size mismatch");
  }
  std::vector<T> slots(slots_, T{});
  std::copy(in.begin(), in.end(), slots.begin());
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kAdd:
        slots[op.dst] = slots[op.src_a] + slots[op.src_b];
        break;
      case OpKind::kSub:
        slots[op.dst] = slots[op.src_a] - slots[op.src_b];
        break;
      case OpKind::kNeg:
        slots[op.dst] = -slots[op.src_a];
        break;
      case OpKind::kShiftMul:
      case OpKind::kConstMul:
        slots[op.dst] =
            slots[op.src_a] * static_cast<T>(op.constant.to_double());
        break;
      case OpKind::kCopy:
        slots[op.dst] = slots[op.src_a];
        break;
    }
  }
  for (std::size_t r = 0; r < outputs_; ++r) out[r] = slots[output_slots_[r]];
}

void LinearProgram::execute(std::span<const float> in,
                            std::span<float> out) const {
  run<float>(in, out);
}

void LinearProgram::execute(std::span<const double> in,
                            std::span<double> out) const {
  run<double>(in, out);
}

std::string LinearProgram::to_string() const {
  std::ostringstream os;
  os << "inputs=" << inputs_ << " outputs=" << outputs_ << "\n";
  for (const Op& op : ops_) {
    os << "  t" << op.dst << " = ";
    switch (op.kind) {
      case OpKind::kAdd:
        os << "t" << op.src_a << " + t" << op.src_b;
        break;
      case OpKind::kSub:
        os << "t" << op.src_a << " - t" << op.src_b;
        break;
      case OpKind::kNeg:
        os << "-t" << op.src_a;
        break;
      case OpKind::kShiftMul:
        os << "t" << op.src_a << " <<* " << op.constant.to_string();
        break;
      case OpKind::kConstMul:
        os << "t" << op.src_a << " * " << op.constant.to_string();
        break;
      case OpKind::kCopy:
        os << "t" << op.src_a;
        break;
    }
    os << "\n";
  }
  os << "  outputs:";
  for (const std::size_t s : output_slots_) os << " t" << s;
  os << "\n";
  return os.str();
}

}  // namespace wino::winograd
