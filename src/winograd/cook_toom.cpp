#include "winograd/cook_toom.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "winograd/program.hpp"

namespace wino::winograd {

using common::Rational;

namespace {

FMatrix to_float(const RMatrix& m) {
  return m.map<float>(
      [](const Rational& r) { return static_cast<float>(r.to_double()); });
}

DMatrix to_double(const RMatrix& m) {
  return m.map<double>([](const Rational& r) { return r.to_double(); });
}

/// Coefficients (ascending powers, padded to `size`) of
/// prod_{j in J} (x - a_j).
std::vector<Rational> monic_product_coeffs(const std::vector<Rational>& a,
                                           std::size_t skip,
                                           std::size_t size) {
  std::vector<Rational> coeffs{Rational(1)};
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (j == skip) continue;
    // Multiply the running polynomial by (x - a_j).
    std::vector<Rational> next(coeffs.size() + 1);
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      next[k + 1] += coeffs[k];
      next[k] -= coeffs[k] * a[j];
    }
    coeffs = std::move(next);
  }
  coeffs.resize(size);
  return coeffs;
}

}  // namespace

FMatrix TransformSet::bt_f() const { return to_float(bt); }
FMatrix TransformSet::g_f() const { return to_float(g); }
FMatrix TransformSet::at_f() const { return to_float(at); }
DMatrix TransformSet::bt_d() const { return to_double(bt); }
DMatrix TransformSet::g_d() const { return to_double(g); }
DMatrix TransformSet::at_d() const { return to_double(at); }

std::vector<Rational> default_points(int count) {
  static const std::vector<Rational> kSchedule = {
      Rational(0),      Rational(1),      Rational(-1),    Rational(2),
      Rational(-2),     Rational(1, 2),   Rational(-1, 2), Rational(4),
      Rational(-4),     Rational(1, 4),   Rational(-1, 4), Rational(3),
      Rational(-3),     Rational(8),      Rational(-8),    Rational(1, 8),
      Rational(-1, 8),  Rational(5),      Rational(-5),    Rational(1, 3),
      Rational(-1, 3),  Rational(6),      Rational(-6),    Rational(7),
      Rational(-7)};
  if (count < 0 || static_cast<std::size_t>(count) > kSchedule.size()) {
    throw std::invalid_argument("default_points: unsupported point count");
  }
  return {kSchedule.begin(), kSchedule.begin() + count};
}

TransformSet cook_toom(int m, int r, const std::vector<Rational>& points) {
  if (m < 1 || r < 1) {
    throw std::invalid_argument("cook_toom: m and r must be positive");
  }
  const int n = m + r - 1;
  if (points.size() != static_cast<std::size_t>(n - 1)) {
    throw std::invalid_argument(
        "cook_toom: need exactly m + r - 2 finite points");
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i] == points[j]) {
        throw std::invalid_argument("cook_toom: duplicate point");
      }
    }
  }

  TransformSet t;
  t.m = m;
  t.r = r;
  t.points = points;

  const auto nu = static_cast<std::size_t>(n);

  // B^T: rows 0..n-2 are the Lagrange numerators L_i, last row is M.
  t.bt = RMatrix(nu, nu);
  for (std::size_t i = 0; i + 1 < nu; ++i) {
    const auto row = monic_product_coeffs(points, i, nu);
    for (std::size_t j = 0; j < nu; ++j) t.bt(i, j) = row[j];
  }
  {
    const auto m_row =
        monic_product_coeffs(points, points.size() /*skip none*/, nu);
    for (std::size_t j = 0; j < nu; ++j) t.bt(nu - 1, j) = m_row[j];
  }

  // G: Vandermonde rows scaled by 1/N_i; last row selects the leading
  // filter coefficient (the point at infinity).
  t.g = RMatrix(nu, static_cast<std::size_t>(r));
  for (std::size_t i = 0; i + 1 < nu; ++i) {
    Rational norm(1);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i) norm *= points[i] - points[j];
    }
    const Rational inv = norm.reciprocal();
    for (int p = 0; p < r; ++p) {
      t.g(i, static_cast<std::size_t>(p)) = points[i].pow(p) * inv;
    }
  }
  t.g(nu - 1, static_cast<std::size_t>(r - 1)) = Rational(1);

  // A^T: Vandermonde columns in the output size m; infinity contributes
  // only to the highest output power.
  t.at = RMatrix(static_cast<std::size_t>(m), nu);
  for (std::size_t i = 0; i + 1 < nu; ++i) {
    for (int k = 0; k < m; ++k) {
      t.at(static_cast<std::size_t>(k), i) = points[i].pow(k);
    }
  }
  t.at(static_cast<std::size_t>(m - 1), nu - 1) = Rational(1);

  return t;
}

TransformSet cook_toom(int m, int r) {
  return cook_toom(m, r, default_points(m + r - 2));
}

namespace {

/// Cost of one F(m, r) candidate: total 2-D transform FLOPs with CSE, then
/// entry-magnitude sum as a numerical-stability tie-break.
struct CandidateCost {
  std::size_t flops = 0;
  std::size_t const_mults = 0;
  double entry_magnitude = 0;

  friend bool operator<(const CandidateCost& a, const CandidateCost& b) {
    if (a.flops != b.flops) return a.flops < b.flops;
    if (a.const_mults != b.const_mults) return a.const_mults < b.const_mults;
    return a.entry_magnitude < b.entry_magnitude;
  }
};

CandidateCost score_candidate(const TransformSet& t) {
  const auto n = static_cast<std::size_t>(t.tile());
  const auto m = static_cast<std::size_t>(t.m);
  const auto r = static_cast<std::size_t>(t.r);
  const auto data = LinearProgram::from_matrix(t.bt, true).counts();
  const auto filter = LinearProgram::from_matrix(t.g, true).counts();
  const auto inverse = LinearProgram::from_matrix(t.at, true).counts();
  CandidateCost c;
  c.flops = 2 * n * data.flops() + (r + n) * filter.flops() +
            (n + m) * inverse.flops();
  c.const_mults = 2 * n * data.const_mults + (r + n) * filter.const_mults +
                  (n + m) * inverse.const_mults;
  for (const auto* mat : {&t.bt, &t.at}) {
    for (std::size_t i = 0; i < mat->rows(); ++i) {
      for (std::size_t j = 0; j < mat->cols(); ++j) {
        c.entry_magnitude += (*mat)(i, j).abs().to_double();
      }
    }
  }
  return c;
}

}  // namespace

TransformSet best_cook_toom(int m, int r) {
  const std::vector<Rational> pool{
      Rational(0),     Rational(1),     Rational(-1),   Rational(2),
      Rational(-2),    Rational(1, 2),  Rational(-1, 2), Rational(4),
      Rational(-4),    Rational(1, 4),  Rational(-1, 4), Rational(3),
      Rational(-3)};
  const int need = m + r - 2;
  if (need <= 0 || static_cast<std::size_t>(need) > pool.size()) {
    return cook_toom(m, r);
  }

  TransformSet best;
  CandidateCost best_cost;
  bool have_best = false;
  std::vector<Rational> pts(static_cast<std::size_t>(need));
  // Enumerate all point subsets of the pool (order within a set does not
  // change the algorithm's cost, only row permutations).
  const auto recurse = [&](auto&& self, std::size_t from,
                           std::size_t chosen) -> void {
    if (chosen == pts.size()) {
      TransformSet cand = cook_toom(m, r, pts);
      const CandidateCost cost = score_candidate(cand);
      if (!have_best || cost < best_cost) {
        best = std::move(cand);
        best_cost = cost;
        have_best = true;
      }
      return;
    }
    for (std::size_t i = from; i < pool.size(); ++i) {
      pts[chosen] = pool[i];
      self(self, i + 1, chosen + 1);
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

const TransformSet& transforms(int m, int r) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, TransformSet> cache;
  const std::scoped_lock lock(mu);
  auto [it, inserted] = cache.try_emplace({m, r});
  if (inserted) it->second = best_cook_toom(m, r);
  return it->second;
}

TransformSet lavin_f2x2_3x3() {
  TransformSet t;
  t.m = 2;
  t.r = 3;
  t.points = default_points(3);
  t.bt = RMatrix{{1, 0, -1, 0}, {0, 1, 1, 0}, {0, -1, 1, 0}, {0, 1, 0, -1}};
  t.g = RMatrix{{1, 0, 0},
                {{1, 2}, {1, 2}, {1, 2}},
                {{1, 2}, {-1, 2}, {1, 2}},
                {0, 0, 1}};
  t.at = RMatrix{{1, 1, 1, 0}, {0, 1, -1, -1}};
  return t;
}

TransformSet lavin_f4x4_3x3() {
  TransformSet t;
  t.m = 4;
  t.r = 3;
  t.points = default_points(5);
  t.bt = RMatrix{{4, 0, -5, 0, 1, 0},  {0, -4, -4, 1, 1, 0},
                 {0, 4, -4, -1, 1, 0}, {0, -2, -1, 2, 1, 0},
                 {0, 2, -1, -2, 1, 0}, {0, 4, 0, -5, 0, 1}};
  t.g = RMatrix{{{1, 4}, {0}, {0}},
                {{-1, 6}, {-1, 6}, {-1, 6}},
                {{-1, 6}, {1, 6}, {-1, 6}},
                {{1, 24}, {1, 12}, {1, 6}},
                {{1, 24}, {-1, 12}, {1, 6}},
                {0, 0, 1}};
  t.at = RMatrix{{1, 1, 1, 1, 1, 0},
                 {0, 1, -1, 2, -2, 0},
                 {0, 1, 1, 4, 4, 0},
                 {0, 1, -1, 8, -8, 1}};
  return t;
}

std::vector<Rational> direct_correlation(const std::vector<Rational>& d,
                                         const std::vector<Rational>& g,
                                         int m) {
  if (d.size() + 1 != g.size() + static_cast<std::size_t>(m)) {
    throw std::invalid_argument("direct_correlation: size mismatch");
  }
  std::vector<Rational> y(static_cast<std::size_t>(m));
  for (std::size_t k = 0; k < y.size(); ++k) {
    for (std::size_t j = 0; j < g.size(); ++j) y[k] += g[j] * d[k + j];
  }
  return y;
}

std::vector<Rational> apply_1d_exact(const TransformSet& t,
                                     const std::vector<Rational>& d,
                                     const std::vector<Rational>& g) {
  const auto n = static_cast<std::size_t>(t.tile());
  if (d.size() != n || g.size() != static_cast<std::size_t>(t.r)) {
    throw std::invalid_argument("apply_1d_exact: size mismatch");
  }
  std::vector<Rational> u(n);  // B^T d
  std::vector<Rational> v(n);  // G g
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) u[i] += t.bt(i, j) * d[j];
    for (std::size_t j = 0; j < g.size(); ++j) v[i] += t.g(i, j) * g[j];
  }
  std::vector<Rational> y(static_cast<std::size_t>(t.m));
  for (std::size_t k = 0; k < y.size(); ++k) {
    for (std::size_t i = 0; i < n; ++i) y[k] += t.at(k, i) * u[i] * v[i];
  }
  return y;
}

}  // namespace wino::winograd
